//! The server: a TCP listener hosting one shared [`DataCell`] engine.
//!
//! Threading model (no async runtime — plain `std::net` + `std::thread`,
//! the build environment is offline):
//!
//! * the **listener thread** accepts connections and spawns one
//!   [`session`](crate::session) thread per client;
//! * the **pump thread** is the scheduler's heartbeat: it waits on a
//!   condvar-with-timeout over the engine mutex and drives
//!   [`DataCell::run_until_idle`] whenever a session signals new work (or
//!   every `pump_interval` as a safety net). Ingest commands (`PUSH`,
//!   `EXEC INSERT`) also evaluate synchronously before acknowledging, so
//!   the pump only matters for out-of-band enabling events (e.g. a query
//!   registered after data already arrived);
//! * **graceful shutdown** raises a flag every blocking point polls,
//!   closes all subscriber queues via [`DataCell::shutdown`] so streaming
//!   sessions end their `CHUNK` streams, unblocks `accept` with a
//!   self-connection, and joins every thread.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use datacell_core::{DataCell, DataCellConfig, EngineError, Faults};
use datacell_storage::Chunk;

use crate::reactor::{reactor_loop, BinaryHandoff};
use crate::replay::{FrameDelivery, ReplayRing};
use crate::session::{run_session, SessionStats};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Engine configuration.
    pub engine: DataCellConfig,
    /// SQL script (`;`-separated) run against the engine before the
    /// listener opens — typically `CREATE STREAM`s.
    pub init_script: Option<String>,
    /// Fallback interval at which the pump thread fires the scheduler
    /// even without an explicit work signal.
    pub pump_interval: Duration,
    /// Result chunks retained per subscribed query for
    /// reconnect-with-resume (`SUBSCRIBE … AFTER`): a reconnecting client
    /// can recover at most this many missed chunks.
    pub replay_capacity: usize,
    /// Close command-mode sessions with no input for this long (`None` =
    /// never). Streaming sessions are exempt — a subscriber is legitimately
    /// quiet for hours.
    pub idle_timeout: Option<Duration>,
    /// A `PUSH` block must reach its `END` within this deadline of the
    /// last row received, or the batch is discarded with an `ERR` (a
    /// stalled producer must not pin a session forever mid-frame).
    pub push_frame_timeout: Duration,
    /// Socket write deadline per reply/chunk (`None` = block forever). A
    /// wedged client that stops reading eventually errors the write and
    /// frees the session thread.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Results are delivered through subscriptions only; nothing in
            // the server ever calls `take_results`, so the engine-internal
            // pending queue must be bounded or a long-running server leaks
            // one chunk per firing per query.
            engine: DataCellConfig {
                results_capacity: Some(64),
                ..DataCellConfig::default()
            },
            init_script: None,
            pump_interval: Duration::from_millis(50),
            replay_capacity: 256,
            idle_timeout: Some(Duration::from_secs(300)),
            push_frame_timeout: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// The per-session resilience knobs, copied out of [`ServerConfig`] into
/// [`SharedState`] so session threads never need the whole config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionTuning {
    pub idle_timeout: Option<Duration>,
    pub push_frame_timeout: Duration,
    pub write_timeout: Option<Duration>,
}

/// Server-wide counters, aggregated across all sessions (atomics so
/// sessions never contend on the engine mutex just to count).
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    pub commands: AtomicU64,
    pub rows_pushed: AtomicU64,
    pub chunks_delivered: AtomicU64,
    pub rows_delivered: AtomicU64,
    pub errors: AtomicU64,
}

impl StatCounters {
    /// Sessions bump the shared counters live (so `STATS` and monitoring
    /// see in-flight sessions); closing only records the teardown.
    pub(crate) fn fold_session(&self, _s: &SessionStats) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            rows_pushed: self.rows_pushed.load(Ordering::Relaxed),
            chunks_delivered: self.chunks_delivered.load(Ordering::Relaxed),
            rows_delivered: self.rows_delivered.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Render the server section of the `STATS` report.
    pub(crate) fn render(&self) -> String {
        let s = self.snapshot();
        format!(
            "== server ==\n\
             sessions: {} opened, {} closed\n\
             commands: {} ({} errors)\n\
             ingest: {} rows pushed\n\
             egress: {} chunks / {} rows delivered\n",
            s.sessions_opened,
            s.sessions_closed,
            s.commands,
            s.errors,
            s.rows_pushed,
            s.chunks_delivered,
            s.rows_delivered,
        )
    }
}

/// Point-in-time snapshot of the server-wide counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub sessions_opened: u64,
    /// Sessions fully torn down (counters folded in).
    pub sessions_closed: u64,
    /// Commands dispatched across all sessions.
    pub commands: u64,
    /// Stream tuples ingested over sockets.
    pub rows_pushed: u64,
    /// Result chunks streamed to subscribers.
    pub chunks_delivered: u64,
    /// Result rows streamed to subscribers.
    pub rows_delivered: u64,
    /// Commands answered with `ERR`.
    pub errors: u64,
}

/// State shared by the listener, pump and every session thread.
///
/// Lock order: **engine before rings** — a thread holding the rings lock
/// must never take the engine lock.
pub(crate) struct SharedState {
    engine: Mutex<DataCell>,
    work: Condvar,
    shutdown: AtomicBool,
    pub(crate) stats: StatCounters,
    /// Incarnation id (start-time millis): scope of replay sequence
    /// numbers. A client resuming with a different epoch gets the oldest
    /// retained chunks instead of a seq-based resume.
    pub(crate) epoch: u64,
    rings: Mutex<HashMap<u64, ReplayRing>>,
    replay_capacity: usize,
    pub(crate) tuning: SessionTuning,
    /// Connections that negotiated `HELLO BINARY`, parked here by their
    /// session thread for the reactor to adopt on its next tick.
    handoffs: Mutex<Vec<BinaryHandoff>>,
    /// Fault-injection facade (cloned out of the engine config so the
    /// reactor's socket I/O consults the same schedule as the WAL).
    pub(crate) faults: Faults,
}

impl SharedState {
    /// Lock the engine, transparently recovering from poisoning (a
    /// panicked session must not wedge the whole server).
    pub(crate) fn lock_engine(&self) -> MutexGuard<'_, DataCell> {
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_rings(&self) -> MutexGuard<'_, HashMap<u64, ReplayRing>> {
        self.rings.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Signal the pump thread that new work may be pending.
    pub(crate) fn notify_work(&self) {
        self.work.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work.notify_all();
    }

    /// Make sure `query` has a replay ring (creating its engine tap on
    /// first subscribe), then place a cursor for a (re)connecting
    /// subscriber. Returns `(cursor, next_seq)`: the session delivers
    /// chunks with `seq > cursor`, and `next_seq = cursor + 1` is echoed
    /// in the subscribe handshake.
    pub(crate) fn attach_subscriber(
        &self,
        query: u64,
        after: Option<(u64, u64)>,
    ) -> Result<(u64, u64), EngineError> {
        // Engine lock strictly before the rings lock.
        let mut engine = self.lock_engine();
        let mut rings = self.lock_rings();
        if let Entry::Vacant(slot) = rings.entry(query) {
            let tap = engine.subscribe(query)?;
            slot.insert(ReplayRing::new(tap, self.replay_capacity));
        }
        drop(engine);
        let Some(ring) = rings.get_mut(&query) else {
            // Unreachable: inserted above; keep the deny-path panic-free.
            return Err(EngineError::UnknownQuery(query));
        };
        ring.drain_tap();
        let cursor = match after {
            // Same incarnation: resume right after the client's last seen
            // chunk (chunks already evicted are simply gone — bounded ring).
            Some((epoch, seq)) if epoch == self.epoch => seq,
            // Server restarted (or first contact): replay everything still
            // retained, which for a fresh ring means "future chunks only".
            Some(_) => ring.oldest_retained().saturating_sub(1),
            None => ring.next_seq().saturating_sub(1),
        };
        Ok((cursor, cursor + 1))
    }

    /// Drain the query's tap and clone out up to `max` chunks after
    /// `cursor`. Returns the batch plus whether the ring is closed
    /// (deregistered / engine shutdown — once drained, the stream is
    /// over).
    pub(crate) fn fetch_ring(
        &self,
        query: u64,
        cursor: u64,
        max: usize,
    ) -> (Vec<(u64, Chunk)>, bool) {
        let mut rings = self.lock_rings();
        match rings.get_mut(&query) {
            Some(ring) => {
                ring.drain_tap();
                (ring.fetch_after(cursor, max), ring.is_closed())
            }
            None => (Vec::new(), true),
        }
    }

    /// Binary-mode counterpart of [`SharedState::fetch_ring`]: wire-ready
    /// `CHUNK` frames (encoded at most once per chunk, `Arc`-shared across
    /// subscribers) past `cursor`, plus whether the ring is closed.
    pub(crate) fn fetch_ring_frames(
        &self,
        query: u64,
        cursor: u64,
        max: usize,
    ) -> (Vec<FrameDelivery>, bool) {
        let mut rings = self.lock_rings();
        match rings.get_mut(&query) {
            Some(ring) => {
                ring.drain_tap();
                (ring.fetch_frames_after(query, cursor, max), ring.is_closed())
            }
            None => (Vec::new(), true),
        }
    }

    /// Park a freshly negotiated binary connection for the reactor.
    pub(crate) fn enqueue_handoff(&self, handoff: BinaryHandoff) {
        self.handoffs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handoff);
    }

    /// Adopt every parked binary connection (reactor side).
    pub(crate) fn take_handoffs(&self) -> Vec<BinaryHandoff> {
        std::mem::take(&mut *self.handoffs.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Pull every ring's tap forward so sequence numbers are assigned and
    /// chunks retained even while no subscriber is attached. (Rings of
    /// deregistered queries stay, closed, so a late resume sees a clean
    /// end-of-stream rather than an unknown query.)
    pub(crate) fn drain_rings(&self) {
        let mut rings = self.lock_rings();
        for ring in rings.values_mut() {
            ring.drain_tap();
        }
    }
}

/// A running DataCell TCP server.
pub struct Server {
    shared: Arc<SharedState>,
    addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    reactor: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<SessionStats>>>>,
}

impl Server {
    /// Build the engine (recovering it from the WAL when durability is
    /// configured and the directory holds state), run the init script,
    /// bind the listener and start the pump + accept threads.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let mut engine = DataCell::open(config.engine.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if engine.recovered() {
            // The catalog and query network came back from disk; replaying
            // the init script would collide with the recovered DDL.
            eprintln!("datacell-server: recovered engine state; skipping init script");
        } else if let Some(script) = &config.init_script {
            engine
                .execute_script(script)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let epoch = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let faults = engine.config().faults.clone();
        let obs = engine.obs().clone();
        let shared = Arc::new(SharedState {
            engine: Mutex::new(engine),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatCounters::default(),
            epoch,
            rings: Mutex::new(HashMap::new()),
            replay_capacity: config.replay_capacity,
            tuning: SessionTuning {
                idle_timeout: config.idle_timeout,
                push_frame_timeout: config.push_frame_timeout,
                write_timeout: config.write_timeout,
            },
            handoffs: Mutex::new(Vec::new()),
            faults,
        });
        // Prime a replay ring for every recovered query *before* the
        // listener opens: chunks fired between recovery and the first
        // subscriber re-attaching are retained for resume, not dropped.
        {
            let mut engine = shared.lock_engine();
            let mut rings = shared.lock_rings();
            for query in engine.query_ids() {
                if let Ok(tap) = engine.subscribe(query) {
                    rings.insert(query, ReplayRing::new(tap, shared.replay_capacity));
                }
            }
        }
        let sessions: Arc<Mutex<Vec<JoinHandle<SessionStats>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let pump = {
            let shared = shared.clone();
            let interval = config.pump_interval;
            std::thread::Builder::new()
                .name("datacell-pump".into())
                .spawn(move || pump_loop(&shared, interval))?
        };
        let reactor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("datacell-reactor".into())
                .spawn(move || reactor_loop(&shared, &obs))?
        };
        let listener_thread = {
            let shared = shared.clone();
            let sessions = sessions.clone();
            std::thread::Builder::new()
                .name("datacell-listener".into())
                .spawn(move || accept_loop(listener, &shared, &sessions))?
        };
        Ok(Server {
            shared,
            addr,
            listener: Some(listener_thread),
            pump: Some(pump),
            reactor: Some(reactor),
            sessions,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This incarnation's epoch — the scope of replay sequence numbers
    /// (echoed to clients in the `SUBSCRIBE` handshake).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Whether some session issued `SHUTDOWN` (or [`Server::shutdown`]
    /// already ran). The embedding binary polls this to know when to tear
    /// the server down.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.is_shutdown()
    }

    /// Current server-wide counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Run `f` against the engine under the server's mutex (test and
    /// embedding hook — e.g. seed data or inspect `EngineStats`).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut DataCell) -> R) -> R {
        f(&mut self.shared.lock_engine())
    }

    /// Graceful shutdown: close subscriber queues (ending every `CHUNK`
    /// stream), stop accepting, join all threads, then checkpoint the
    /// engine (catalog snapshot + log fsync) when durability is on — so a
    /// restart recovers from a compact snapshot instead of a long meta-log
    /// replay. Returns the final counter snapshot.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.request_shutdown();
        self.shared.lock_engine().shutdown();
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut guard =
                self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Every session is gone: the engine is quiescent — checkpoint.
        if let Err(e) = self.shared.lock_engine().checkpoint() {
            eprintln!("datacell-server: shutdown checkpoint failed: {e}");
        }
        self.shared.stats.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt and braces for tests that forget to call shutdown(): raise
        // the flag so detached threads exit; they are not joined here.
        self.shared.request_shutdown();
        self.shared.lock_engine().shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<SharedState>,
    sessions: &Arc<Mutex<Vec<JoinHandle<SessionStats>>>>,
) {
    for stream in listener.incoming() {
        if shared.is_shutdown() {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("datacell-session".into())
            .spawn(move || run_session(stream, shared));
        if let Ok(handle) = handle {
            let mut guard = sessions.lock().unwrap_or_else(PoisonError::into_inner);
            // Reap finished sessions so the handle list doesn't grow with
            // every short-lived connection over the server's lifetime.
            for done in std::mem::take(&mut *guard) {
                if done.is_finished() {
                    let _ = done.join();
                } else {
                    guard.push(done);
                }
            }
            guard.push(handle);
        }
    }
}

fn pump_loop(shared: &Arc<SharedState>, interval: Duration) {
    let mut engine = shared.lock_engine();
    while !shared.is_shutdown() {
        let (guard, _timeout) = shared
            .work
            .wait_timeout(engine, interval)
            .unwrap_or_else(PoisonError::into_inner);
        engine = guard;
        if shared.is_shutdown() {
            break;
        }
        let _ = engine.run_until_idle();
        // Advance every replay ring even with no subscriber attached, so
        // sequence numbers exist the moment a client (re)subscribes.
        shared.drain_rings();
    }
}
