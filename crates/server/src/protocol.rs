//! Wire protocol: framing, parsing and serialization — no sockets here,
//! so every rule is unit-testable.
//!
//! The protocol is line-oriented text (`\n`-terminated, `\r` tolerated):
//!
//! ```text
//! client → server                       server → client
//! ---------------------------------------------------------------------
//! HELLO BINARY <version>                OK HELLO BINARY <version>
//!                                         (both directions switch to
//!                                          binary frames — see `frame`)
//! SCHEMA <stream>                       OK SCHEMA <stream> <hex-schema>
//! PING                                  PONG
//! EXEC <sql>                            OK CREATED <name> | OK DROPPED <name>
//!                                       | OK INSERTED <n>
//!                                       | ROWS <n> <csv-names> + n CSV rows
//! REGISTER [INCREMENTAL|REEVAL] <sql>   OK QUERY <id>
//! DEREGISTER <id>                       OK DEREGISTERED <id>
//! PUSH <stream>                         OK PUSHED <n>
//!   <csv row> … END                       (socket-receptor bulk ingest)
//! SUBSCRIBE <id> [LIMIT <n>]            OK SUBSCRIBED <id> <epoch> <next-seq>
//!           [AFTER <epoch> <seq>]           <csv-names>
//!                                       then CHUNK <id> <n> <seq> + n CSV rows …
//! STOP          (while subscribed)      OK STOPPED <chunks> <rows>
//! overloaded engine                     OVERLOADED <retry-after-ms>
//! STATS                                 STATS <n> + n report lines
//! STATS DETAIL                          STATS <n> + n report lines
//!                                         (adds analyze + latency sections)
//! METRICS                               METRICS <n> + n Prometheus lines
//! EXPLAIN ANALYZE <id>                  ANALYZE <n> + n report lines
//! TRACE DUMP [N]                        TRACE <n> + n event lines
//! SHUTDOWN                              OK SHUTDOWN
//! QUIT                                  OK BYE
//! any error                             ERR <message>
//! ```
//!
//! Every `CHUNK` frame carries the query's monotonically increasing
//! result sequence number, scoped to one server incarnation (the
//! `<epoch>` of the subscribe handshake). A reconnecting client replays
//! its position with `AFTER <epoch> <seq>`: same epoch → the server
//! resumes from the first retained chunk after `seq`; different epoch
//! (the server restarted) → it replays everything still retained.
//!
//! Multi-line replies carry an exact line count up front, so a client
//! never needs a terminator scan. Values are CSV-encoded per
//! [`encode_value`]: strings are always double-quoted (`""` escaping),
//! `NULL` / `true` / `false` / integers / floats are bare, timestamps are
//! `@<micros>` — the same rendering `Value`'s `Display` uses, so a wire
//! chunk is byte-identical to encoding the in-process chunk.

use std::fmt;

use datacell_core::ExecutionMode;
use datacell_storage::{Chunk, DataType, Row, Schema, Value};

/// Terminator line for a `PUSH` row block.
pub const PUSH_END: &str = "END";

/// A protocol violation (malformed command, field or frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// One client command, parsed from its first line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Negotiate the binary wire mode: `HELLO BINARY <version>`. On
    /// `OK HELLO BINARY <version>` both directions switch to frames (see
    /// [`crate::frame`]); an unsupported version answers `ERR` and the
    /// session stays in text mode.
    Hello(u32),
    /// Fetch a stream's schema (`SCHEMA <stream>`), hex-encoded
    /// `binio::encode_schema` bytes — what a binary client needs to build
    /// columnar `PUSH` frames.
    Schema(String),
    /// Liveness probe.
    Ping,
    /// Run one SQL statement.
    Exec(String),
    /// Register a continuous query (`mode` = None → engine default).
    Register {
        /// The SELECT text.
        sql: String,
        /// Explicit execution mode, if any.
        mode: Option<ExecutionMode>,
    },
    /// Remove a continuous query.
    Deregister(u64),
    /// Bulk-ingest CSV rows into a stream (rows follow, then [`PUSH_END`]).
    Push(String),
    /// Stream a query's result chunks to this connection.
    Subscribe {
        /// Query id.
        query: u64,
        /// Auto-stop after this many chunks (None = until STOP/close).
        limit: Option<u64>,
        /// Resume position: `(epoch, last-seen-seq)` from a previous
        /// incarnation of this subscription (None = future chunks only).
        after: Option<(u64, u64)>,
    },
    /// Leave streaming mode (only meaningful while subscribed).
    Stop,
    /// Engine + server statistics report.
    Stats,
    /// Extended statistics: the `STATS` report plus the per-factory
    /// analyze table and the lifecycle-latency percentile summary.
    StatsDetail,
    /// Metrics registry snapshot in Prometheus text exposition format.
    Metrics,
    /// Observed-runtime table for one continuous query (`EXPLAIN ANALYZE`).
    ExplainAnalyze(u64),
    /// Drain the flight recorder (the `n` most recent events, or all).
    TraceDump(Option<usize>),
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Close this session.
    Quit,
}

/// Parse one command line.
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let line = line.trim();
    let (word, rest) = match line.split_once(char::is_whitespace) {
        Some((w, r)) => (w, r.trim()),
        None => (line, ""),
    };
    let expect_empty = |cmd: &str| {
        if rest.is_empty() {
            Ok(())
        } else {
            Err(err(format!("{cmd} takes no arguments")))
        }
    };
    match word.to_ascii_uppercase().as_str() {
        "HELLO" => {
            const SYNTAX: &str = "HELLO syntax: HELLO BINARY <version>";
            let mut parts = rest.split_whitespace();
            match (parts.next().map(str::to_ascii_uppercase), parts.next(), parts.next()) {
                (Some(kw), Some(v), None) if kw == "BINARY" => v
                    .parse::<u32>()
                    .map(Command::Hello)
                    .map_err(|_| err(format!("HELLO BINARY requires a version, got {v:?}"))),
                _ => Err(err(SYNTAX)),
            }
        }
        "SCHEMA" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                return Err(err("SCHEMA requires exactly one stream name"));
            }
            Ok(Command::Schema(rest.to_owned()))
        }
        "PING" => expect_empty("PING").map(|()| Command::Ping),
        "EXEC" => {
            if rest.is_empty() {
                return Err(err("EXEC requires a SQL statement"));
            }
            Ok(Command::Exec(rest.to_owned()))
        }
        "REGISTER" => {
            if rest.is_empty() {
                return Err(err("REGISTER requires a SELECT statement"));
            }
            let (head, tail) = match rest.split_once(char::is_whitespace) {
                Some((h, t)) => (h, t.trim()),
                None => (rest, ""),
            };
            let (mode, sql) = match head.to_ascii_uppercase().as_str() {
                "INCREMENTAL" => (Some(ExecutionMode::Incremental), tail),
                "REEVAL" => (Some(ExecutionMode::Reevaluate), tail),
                _ => (None, rest),
            };
            if sql.is_empty() {
                return Err(err("REGISTER requires a SELECT statement"));
            }
            Ok(Command::Register { sql: sql.to_owned(), mode })
        }
        "DEREGISTER" => rest
            .parse::<u64>()
            .map(Command::Deregister)
            .map_err(|_| err(format!("DEREGISTER requires a query id, got {rest:?}"))),
        "PUSH" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                return Err(err("PUSH requires exactly one stream name"));
            }
            Ok(Command::Push(rest.to_owned()))
        }
        "SUBSCRIBE" => {
            const SYNTAX: &str =
                "SUBSCRIBE syntax: SUBSCRIBE <id> [LIMIT <n>] [AFTER <epoch> <seq>]";
            let mut parts = rest.split_whitespace();
            let id = parts
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| err(format!("SUBSCRIBE requires a query id, got {rest:?}")))?;
            let mut limit = None;
            let mut after = None;
            while let Some(kw) = parts.next() {
                match kw.to_ascii_uppercase().as_str() {
                    "LIMIT" if limit.is_none() => {
                        let n = parts.next().ok_or_else(|| err(SYNTAX))?;
                        limit = Some(
                            n.parse::<u64>().map_err(|_| {
                                err(format!("LIMIT requires a count, got {n:?}"))
                            })?,
                        );
                    }
                    "AFTER" if after.is_none() => {
                        let epoch = parts
                            .next()
                            .and_then(|t| t.parse::<u64>().ok())
                            .ok_or_else(|| err(SYNTAX))?;
                        let seq = parts
                            .next()
                            .and_then(|t| t.parse::<u64>().ok())
                            .ok_or_else(|| err(SYNTAX))?;
                        after = Some((epoch, seq));
                    }
                    _ => return Err(err(SYNTAX)),
                }
            }
            Ok(Command::Subscribe { query: id, limit, after })
        }
        "STOP" => expect_empty("STOP").map(|()| Command::Stop),
        "STATS" => {
            if rest.is_empty() {
                Ok(Command::Stats)
            } else if rest.eq_ignore_ascii_case("DETAIL") {
                Ok(Command::StatsDetail)
            } else {
                Err(err("STATS syntax: STATS [DETAIL]"))
            }
        }
        "METRICS" => expect_empty("METRICS").map(|()| Command::Metrics),
        "EXPLAIN" => {
            let (head, tail) = match rest.split_once(char::is_whitespace) {
                Some((h, t)) => (h, t.trim()),
                None => (rest, ""),
            };
            if !head.eq_ignore_ascii_case("ANALYZE") {
                return Err(err("EXPLAIN syntax: EXPLAIN ANALYZE <query-id>"));
            }
            tail.parse::<u64>()
                .map(Command::ExplainAnalyze)
                .map_err(|_| err(format!("EXPLAIN ANALYZE requires a query id, got {tail:?}")))
        }
        "TRACE" => {
            let mut parts = rest.split_whitespace();
            match (parts.next().map(str::to_ascii_uppercase), parts.next(), parts.next()) {
                (Some(kw), None, _) if kw == "DUMP" => Ok(Command::TraceDump(None)),
                (Some(kw), Some(n), None) if kw == "DUMP" => n
                    .parse::<usize>()
                    .map(|n| Command::TraceDump(Some(n)))
                    .map_err(|_| err(format!("TRACE DUMP requires a count, got {n:?}"))),
                _ => Err(err("TRACE syntax: TRACE DUMP [<n>]")),
            }
        }
        "SHUTDOWN" => expect_empty("SHUTDOWN").map(|()| Command::Shutdown),
        "QUIT" => expect_empty("QUIT").map(|()| Command::Quit),
        other => Err(err(format!("unknown command {other:?}"))),
    }
}

// ---- value / row CSV encoding ----------------------------------------

/// Encode one value as a CSV field. Strings are always quoted (with `""`
/// escaping), everything else uses `Value`'s `Display` rendering — which
/// makes `NULL`, booleans, numbers and `@micros` timestamps unambiguous.
///
/// Because the framing is line-oriented, newlines (and backslashes)
/// inside quoted strings are backslash-escaped: `\n`, `\r`, `\\`. A raw
/// newline must never reach the wire inside a field, or it would split
/// the frame — and, on the `PUSH` path, let data inject protocol
/// commands.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\"\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    _ => out.push(c),
                }
            }
            out.push('"');
            out
        }
        other => other.to_string(),
    }
}

/// Encode a row as one CSV line (no trailing newline).
pub fn encode_row(row: &[Value]) -> String {
    row.iter().map(encode_value).collect::<Vec<_>>().join(",")
}

/// Encode a column-name list as one CSV line (names are quoted only when
/// they contain a delimiter or quote).
pub fn encode_names(names: &[String]) -> String {
    names
        .iter()
        .map(|n| {
            if n.contains([',', '"']) {
                encode_value(&Value::Str(n.clone()))
            } else {
                n.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Encode one result chunk as a `CHUNK` frame (header + rows, each line
/// `\n`-terminated). `seq` is the chunk's per-query delivery sequence
/// number — the client's resume cursor.
pub fn encode_chunk(query: u64, seq: u64, chunk: &Chunk) -> String {
    let mut out = format!("CHUNK {query} {} {seq}\n", chunk.len());
    for row in chunk.rows() {
        out.push_str(&encode_row(&row));
        out.push('\n');
    }
    out
}

/// One CSV field plus whether it was quoted (quoted ⇒ always a string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Unescaped field text.
    pub text: String,
    /// Whether the field was written in double quotes.
    pub quoted: bool,
}

/// Split one CSV line into fields, honouring double-quote escaping.
pub fn split_fields(line: &str) -> Result<Vec<Field>, ProtocolError> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut text = String::new();
        let mut quoted = false;
        if chars.peek() == Some(&'"') {
            quoted = true;
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            text.push('"');
                        } else {
                            break;
                        }
                    }
                    Some('\\') => match chars.next() {
                        Some('n') => text.push('\n'),
                        Some('r') => text.push('\r'),
                        Some('\\') => text.push('\\'),
                        other => {
                            return Err(err(format!(
                                "bad escape \\{} in quoted field",
                                other.map(String::from).unwrap_or_default()
                            )))
                        }
                    },
                    Some(c) => text.push(c),
                    None => return Err(err("unterminated quoted field")),
                }
            }
            match chars.next() {
                None => {
                    fields.push(Field { text, quoted });
                    return Ok(fields);
                }
                Some(',') => {
                    fields.push(Field { text, quoted });
                    continue;
                }
                Some(c) => return Err(err(format!("unexpected {c:?} after quoted field"))),
            }
        }
        loop {
            match chars.next() {
                None => {
                    fields.push(Field { text, quoted });
                    return Ok(fields);
                }
                Some(',') => {
                    fields.push(Field { text, quoted });
                    break;
                }
                Some('"') => return Err(err("quote inside unquoted field")),
                Some(c) => text.push(c),
            }
        }
    }
}

/// Decode one field without schema knowledge (result rows): quoted →
/// string; otherwise `NULL`, booleans, `@micros`, integers and floats.
pub fn decode_value(field: &Field) -> Result<Value, ProtocolError> {
    if field.quoted {
        return Ok(Value::Str(field.text.clone()));
    }
    let t = field.text.as_str();
    match t {
        "NULL" => return Ok(Value::Null),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(ts) = t.strip_prefix('@') {
        return ts
            .parse::<i64>()
            .map(Value::Timestamp)
            .map_err(|_| err(format!("bad timestamp field {t:?}")));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = t.parse::<f64>() {
        return Ok(Value::Float(x));
    }
    Err(err(format!("undecodable field {t:?}")))
}

/// Decode a result row (schema-less: the encoding is self-describing).
pub fn decode_row(line: &str) -> Result<Row, ProtocolError> {
    split_fields(line)?.iter().map(decode_value).collect()
}

/// Decode one ingest row against a stream schema (`PUSH` path): each field
/// is coerced to its column's type; empty or `NULL` bare fields are NULL.
pub fn decode_typed_row(line: &str, schema: &Schema) -> Result<Row, ProtocolError> {
    let fields = split_fields(line)?;
    if fields.len() != schema.arity() {
        return Err(err(format!(
            "row has {} fields, stream has {} columns",
            fields.len(),
            schema.arity()
        )));
    }
    fields
        .iter()
        .zip(schema.columns())
        .map(|(f, col)| {
            if !f.quoted && (f.text.is_empty() || f.text == "NULL") {
                return Ok(Value::Null);
            }
            let t = f.text.as_str();
            let parsed = match col.ty {
                DataType::Str => Some(Value::Str(t.to_owned())),
                _ if f.quoted => None,
                DataType::Bool => t.parse::<bool>().ok().map(Value::Bool),
                DataType::Int => t.parse::<i64>().ok().map(Value::Int),
                DataType::Float => t.parse::<f64>().ok().map(Value::Float),
                DataType::Timestamp => t
                    .strip_prefix('@')
                    .unwrap_or(t)
                    .parse::<i64>()
                    .ok()
                    .map(Value::Timestamp),
            };
            parsed.ok_or_else(|| {
                err(format!("column {:?} ({:?}): bad field {t:?}", col.name, col.ty))
            })
        })
        .collect()
}

/// Render an error reply line (newlines folded so the frame stays one line).
pub fn err_line(msg: &str) -> String {
    format!("ERR {}\n", msg.replace(['\n', '\r'], "; "))
}

// ---- hex (SCHEMA reply payload) ---------------------------------------

/// Lowercase hex of `bytes` (the `OK SCHEMA` reply carries binary schema
/// bytes inside a text line).
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let hi = b >> 4;
        let lo = b & 0xf;
        for n in [hi, lo] {
            out.push(char::from_digit(n as u32, 16).unwrap_or('0'));
        }
    }
    out
}

/// Inverse of [`encode_hex`].
pub fn decode_hex(s: &str) -> Result<Vec<u8>, ProtocolError> {
    if !s.len().is_multiple_of(2) {
        return Err(err("odd-length hex payload"));
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| {
            c.to_digit(16)
                .map(|d| d as u8)
                .ok_or_else(|| err(format!("bad hex digit {c:?}")))
        })
        .collect::<Result<_, _>>()?;
    Ok(digits.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Bat;

    #[test]
    fn parse_basic_commands() {
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("  quit  ").unwrap(), Command::Quit);
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
        assert_eq!(parse_command("STOP").unwrap(), Command::Stop);
        assert_eq!(
            parse_command("EXEC SELECT * FROM t").unwrap(),
            Command::Exec("SELECT * FROM t".into())
        );
        assert_eq!(parse_command("push trades").unwrap(), Command::Push("trades".into()));
        assert_eq!(parse_command("DEREGISTER 12").unwrap(), Command::Deregister(12));
    }

    #[test]
    fn parse_register_modes() {
        assert_eq!(
            parse_command("REGISTER SELECT COUNT(*) FROM s").unwrap(),
            Command::Register { sql: "SELECT COUNT(*) FROM s".into(), mode: None }
        );
        assert_eq!(
            parse_command("REGISTER INCREMENTAL SELECT 1 FROM s").unwrap(),
            Command::Register {
                sql: "SELECT 1 FROM s".into(),
                mode: Some(ExecutionMode::Incremental)
            }
        );
        assert_eq!(
            parse_command("REGISTER REEVAL SELECT 1 FROM s").unwrap(),
            Command::Register {
                sql: "SELECT 1 FROM s".into(),
                mode: Some(ExecutionMode::Reevaluate)
            }
        );
    }

    #[test]
    fn parse_subscribe_forms() {
        assert_eq!(
            parse_command("SUBSCRIBE 3").unwrap(),
            Command::Subscribe { query: 3, limit: None, after: None }
        );
        assert_eq!(
            parse_command("SUBSCRIBE 3 LIMIT 10").unwrap(),
            Command::Subscribe { query: 3, limit: Some(10), after: None }
        );
        assert_eq!(
            parse_command("SUBSCRIBE 3 AFTER 17 42").unwrap(),
            Command::Subscribe { query: 3, limit: None, after: Some((17, 42)) }
        );
        assert_eq!(
            parse_command("SUBSCRIBE 3 LIMIT 5 AFTER 17 42").unwrap(),
            Command::Subscribe { query: 3, limit: Some(5), after: Some((17, 42)) }
        );
        assert!(parse_command("SUBSCRIBE").is_err());
        assert!(parse_command("SUBSCRIBE x").is_err());
        assert!(parse_command("SUBSCRIBE 3 LIMIT").is_err());
        assert!(parse_command("SUBSCRIBE 3 LIMIT 1 junk").is_err());
        assert!(parse_command("SUBSCRIBE 3 AFTER 17").is_err());
        assert!(parse_command("SUBSCRIBE 3 AFTER 17 x").is_err());
        assert!(parse_command("SUBSCRIBE 3 AFTER 1 2 AFTER 3 4").is_err());
        assert!(parse_command("SUBSCRIBE 3 LIMIT 1 LIMIT 2").is_err());
    }

    #[test]
    fn parse_negotiation_commands() {
        assert_eq!(parse_command("HELLO BINARY 1").unwrap(), Command::Hello(1));
        assert_eq!(parse_command("hello binary 2").unwrap(), Command::Hello(2));
        assert_eq!(parse_command("SCHEMA trades").unwrap(), Command::Schema("trades".into()));
        assert!(parse_command("HELLO").is_err());
        assert!(parse_command("HELLO BINARY").is_err());
        assert!(parse_command("HELLO BINARY x").is_err());
        assert!(parse_command("HELLO TEXT 1").is_err());
        assert!(parse_command("HELLO BINARY 1 junk").is_err());
        assert!(parse_command("SCHEMA").is_err());
        assert!(parse_command("SCHEMA a b").is_err());
    }

    #[test]
    fn hex_roundtrip() {
        for bytes in [&[][..], &[0x00][..], &[0xde, 0xad, 0xbe, 0xef][..]] {
            let s = encode_hex(bytes);
            assert_eq!(decode_hex(&s).unwrap(), bytes);
        }
        assert_eq!(encode_hex(&[0x0f, 0xa0]), "0fa0");
        assert!(decode_hex("abc").is_err());
        assert!(decode_hex("zz").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_command("").is_err());
        assert!(parse_command("FROB").is_err());
        assert!(parse_command("PING now").is_err());
        assert!(parse_command("EXEC").is_err());
        assert!(parse_command("REGISTER").is_err());
        assert!(parse_command("REGISTER INCREMENTAL").is_err());
        assert!(parse_command("PUSH a b").is_err());
        assert!(parse_command("DEREGISTER one").is_err());
    }

    #[test]
    fn parse_observability_commands() {
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(parse_command("stats detail").unwrap(), Command::StatsDetail);
        assert_eq!(
            parse_command("EXPLAIN ANALYZE 7").unwrap(),
            Command::ExplainAnalyze(7)
        );
        assert_eq!(parse_command("TRACE DUMP").unwrap(), Command::TraceDump(None));
        assert_eq!(
            parse_command("trace dump 25").unwrap(),
            Command::TraceDump(Some(25))
        );
        assert!(parse_command("METRICS now").is_err());
        assert!(parse_command("STATS VERBOSE").is_err());
        assert!(parse_command("EXPLAIN").is_err());
        assert!(parse_command("EXPLAIN ANALYZE").is_err());
        assert!(parse_command("EXPLAIN ANALYZE x").is_err());
        assert!(parse_command("TRACE").is_err());
        assert!(parse_command("TRACE DUMP x").is_err());
        assert!(parse_command("TRACE DUMP 1 junk").is_err());
    }

    #[test]
    fn value_roundtrip() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Float(3.0),
            Value::Str("plain".into()),
            Value::Str("with,comma and \"quotes\"".into()),
            Value::Str("NULL".into()), // literal string, stays a string
            Value::Str("multi\nline\r\\slash".into()),
            Value::Timestamp(99),
        ];
        let line = encode_row(&row);
        assert_eq!(decode_row(&line).unwrap(), row);
    }

    #[test]
    fn encoding_is_stable() {
        assert_eq!(encode_value(&Value::Float(2.0)), "2.0");
        assert_eq!(encode_value(&Value::Timestamp(5)), "@5");
        assert_eq!(encode_value(&Value::Str("a\"b".into())), "\"a\"\"b\"");
        assert_eq!(
            encode_row(&[Value::Int(1), Value::Str("x,y".into())]),
            "1,\"x,y\""
        );
    }

    #[test]
    fn newlines_never_reach_the_wire_raw() {
        // A newline inside a value must not split the line frame (it
        // would desync the protocol — or inject commands via PUSH).
        let v = Value::Str("a\nEND\nSHUTDOWN".into());
        let encoded = encode_value(&v);
        assert!(!encoded.contains('\n'), "raw newline leaked: {encoded:?}");
        assert_eq!(encoded, "\"a\\nEND\\nSHUTDOWN\"");
        assert_eq!(decode_row(&encoded).unwrap(), vec![v]);
        assert!(split_fields("\"bad\\x\"").is_err());
    }

    #[test]
    fn split_fields_errors() {
        assert!(split_fields("\"open").is_err());
        assert!(split_fields("\"a\"junk").is_err());
        assert!(split_fields("a\"b").is_err());
        assert_eq!(
            split_fields("a,,\"\"").unwrap(),
            vec![
                Field { text: "a".into(), quoted: false },
                Field { text: String::new(), quoted: false },
                Field { text: String::new(), quoted: true },
            ]
        );
    }

    #[test]
    fn typed_rows_follow_schema() {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("temp", DataType::Float),
            ("tag", DataType::Str),
            ("ok", DataType::Bool),
            ("ts", DataType::Timestamp),
        ]);
        let row = decode_typed_row("4,19.5,\"a,b\",true,@77", &schema).unwrap();
        assert_eq!(
            row,
            vec![
                Value::Int(4),
                Value::Float(19.5),
                Value::Str("a,b".into()),
                Value::Bool(true),
                Value::Timestamp(77),
            ]
        );
        // Bare timestamps (no @) and unquoted strings are accepted too.
        let row = decode_typed_row("4,19,plain,false,77", &schema).unwrap();
        assert_eq!(row[1], Value::Float(19.0));
        assert_eq!(row[2], Value::Str("plain".into()));
        assert_eq!(row[4], Value::Timestamp(77));
        // NULLs.
        let row = decode_typed_row("NULL,,NULL,,", &schema).unwrap();
        assert!(row.iter().all(Value::is_null));
        // Errors: arity and type.
        assert!(decode_typed_row("1,2", &schema).is_err());
        assert!(decode_typed_row("x,1,a,true,1", &schema).is_err());
    }

    #[test]
    fn chunk_frame_has_exact_row_count() {
        let chunk = Chunk::new(vec![
            Bat::from_ints(vec![1, 2]),
            Bat::from_floats(vec![0.5, 1.5]),
        ])
        .unwrap();
        let frame = encode_chunk(9, 31, &chunk);
        assert_eq!(frame, "CHUNK 9 2 31\n1,0.5\n2,1.5\n");
    }

    #[test]
    fn err_line_is_single_line() {
        assert_eq!(err_line("boom\nline2"), "ERR boom; line2\n");
    }

    mod roundtrip_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_float() -> BoxedStrategy<f64> {
            prop_oneof![
                // Raw bit patterns: covers subnormals, both zero signs and
                // every exponent; NaN patterns are asserted NaN-preserving.
                (0u64..u64::MAX).prop_map(f64::from_bits),
                (0f64..1.0).prop_map(|x| x + 0.2),
                Just(-0.0f64),
                Just(5e-324),
                Just(f64::MIN_POSITIVE),
                Just(f64::MAX),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                Just(f64::NAN),
            ]
            .boxed()
        }

        fn arb_value() -> BoxedStrategy<Value> {
            let ch = prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('\r'),
                Just(','),
                Just('@'),
                Just('é'),
                (97u32..123).prop_map(|c| char::from_u32(c).unwrap_or('x')),
            ];
            prop_oneof![
                Just(Value::Null),
                Just(Value::Bool(true)),
                Just(Value::Bool(false)),
                (i64::MIN..i64::MAX).prop_map(Value::Int),
                arb_float().prop_map(Value::Float),
                collection::vec(ch, 0..16)
                    .prop_map(|cs| Value::Str(cs.into_iter().collect())),
                (i64::MIN..i64::MAX).prop_map(Value::Timestamp),
            ]
            .boxed()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn text_roundtrip_bit_for_bit(vals in collection::vec(arb_value(), 1..8)) {
                let line = encode_row(&vals);
                let back = decode_row(&line).unwrap();
                prop_assert_eq!(back.len(), vals.len());
                for (b, v) in back.iter().zip(&vals) {
                    match (b, v) {
                        (Value::Float(b), Value::Float(v)) => {
                            // NaN payload bits don't survive text ("NaN"),
                            // but NaN-ness must.
                            if v.is_nan() {
                                prop_assert!(b.is_nan(), "NaN decoded as {b:?}");
                            } else {
                                prop_assert_eq!(b.to_bits(), v.to_bits(), "float {v:?}");
                            }
                        }
                        _ => prop_assert_eq!(b, v),
                    }
                }
            }
        }
    }

    #[test]
    fn names_quoted_only_when_needed() {
        assert_eq!(
            encode_names(&["a".into(), "count_star".into()]),
            "a,count_star"
        );
        assert_eq!(encode_names(&["a,b".into()]), "\"a,b\"");
    }
}
