//! Blocking wire-protocol client — used by the integration tests, the
//! `datacell-cli` binary and the `e10_server` load generator.
//!
//! Two levels of resilience are available:
//!
//! * [`Client::push_rows_retry`] backs off and retries when the server
//!   sheds the push with `OVERLOADED <retry-after-ms>`;
//! * [`ResumingSubscription`] owns its connection and transparently
//!   reconnects (jittered exponential backoff) when the socket dies,
//!   re-attaching with `SUBSCRIBE … AFTER <epoch> <seq>` so the stream
//!   resumes at the last chunk it saw — across server restarts too.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use datacell_core::ExecutionMode;
use datacell_storage::Row;

use crate::protocol::{decode_row, encode_row, split_fields, PUSH_END};
use crate::session::{LineReader, ReadLine};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something outside the protocol grammar.
    Protocol(String),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server shed the request under admission control
    /// (`OVERLOADED <retry-after-ms>`). Retry after the hinted backoff —
    /// or let [`Client::push_rows_retry`] do it for you.
    Overloaded {
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded: retry in {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Decoded reply of [`Client::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecReply {
    /// `OK CREATED <name>`.
    Created(String),
    /// `OK DROPPED <name>`.
    Dropped(String),
    /// `OK INSERTED <n>`.
    Inserted(usize),
    /// `ROWS <n> <names>` + rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Decoded result rows.
        rows: Vec<Row>,
    },
}

/// A blocking connection to a DataCell server.
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    fn send_line(&mut self, line: &str) -> Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        Ok(())
    }

    /// Read one reply line, blocking indefinitely.
    fn read_line(&mut self) -> Result<String> {
        self.stream.set_read_timeout(None)?;
        match self.reader.poll_line()? {
            ReadLine::Line(l) => Ok(l),
            ReadLine::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            ReadLine::Overlong => {
                Err(ClientError::Protocol("server reply line exceeds 1 MiB".into()))
            }
            ReadLine::Idle => Err(ClientError::Protocol("idle on blocking read".into())),
        }
    }

    /// Read one reply line, surfacing `ERR` as [`ClientError::Server`]
    /// and `OVERLOADED` as [`ClientError::Overloaded`].
    fn read_reply(&mut self) -> Result<String> {
        let line = self.read_line()?;
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(ClientError::Server(msg.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OVERLOADED ") {
            let retry_after_ms = rest.trim().parse().map_err(|_| {
                ClientError::Protocol(format!("bad OVERLOADED hint {line:?}"))
            })?;
            return Err(ClientError::Overloaded { retry_after_ms });
        }
        Ok(line)
    }

    fn expect_reply(&mut self, prefix: &str) -> Result<String> {
        let line = self.read_reply()?;
        line.strip_prefix(prefix)
            .map(|rest| rest.trim().to_owned())
            .ok_or_else(|| {
                ClientError::Protocol(format!("expected {prefix:?}, got {line:?}"))
            })
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<()> {
        self.send_line("PING")?;
        let line = self.read_reply()?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected PONG, got {line:?}")))
        }
    }

    /// Run one SQL statement.
    pub fn exec(&mut self, sql: &str) -> Result<ExecReply> {
        self.send_line(&format!("EXEC {sql}"))?;
        let line = self.read_reply()?;
        if let Some(rest) = line.strip_prefix("OK CREATED ") {
            return Ok(ExecReply::Created(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK DROPPED ") {
            return Ok(ExecReply::Dropped(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK INSERTED ") {
            let n = rest
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad count {rest:?}")))?;
            return Ok(ExecReply::Inserted(n));
        }
        if let Some(rest) = line.strip_prefix("ROWS ") {
            let (count, names) = rest
                .split_once(' ')
                .map(|(c, n)| (c, n.to_owned()))
                .unwrap_or((rest, String::new()));
            let count: usize = count
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad row count in {line:?}")))?;
            let names = decode_names(&names)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let row_line = self.read_line()?;
                rows.push(
                    decode_row(&row_line).map_err(|e| ClientError::Protocol(e.0))?,
                );
            }
            return Ok(ExecReply::Rows { names, rows });
        }
        Err(ClientError::Protocol(format!("unexpected EXEC reply {line:?}")))
    }

    /// Register a continuous query, returning its id.
    pub fn register(&mut self, sql: &str) -> Result<u64> {
        self.send_line(&format!("REGISTER {sql}"))?;
        self.read_query_id()
    }

    /// Register with an explicit execution mode.
    pub fn register_with_mode(&mut self, sql: &str, mode: ExecutionMode) -> Result<u64> {
        let kw = match mode {
            ExecutionMode::Incremental => "INCREMENTAL",
            ExecutionMode::Reevaluate => "REEVAL",
        };
        self.send_line(&format!("REGISTER {kw} {sql}"))?;
        self.read_query_id()
    }

    fn read_query_id(&mut self) -> Result<u64> {
        let rest = self.expect_reply("OK QUERY ")?;
        rest.parse()
            .map_err(|_| ClientError::Protocol(format!("bad query id {rest:?}")))
    }

    /// Deregister a continuous query.
    pub fn deregister(&mut self, id: u64) -> Result<()> {
        self.send_line(&format!("DEREGISTER {id}"))?;
        self.expect_reply("OK DEREGISTERED ").map(|_| ())
    }

    /// Bulk-ingest rows into a stream (the socket-receptor path). Returns
    /// how many rows the basket accepted.
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize> {
        let mut block = format!("PUSH {stream}\n");
        for row in rows {
            block.push_str(&encode_row(row));
            block.push('\n');
        }
        block.push_str(PUSH_END);
        block.push('\n');
        self.stream.write_all(block.as_bytes())?;
        let rest = self.expect_reply("OK PUSHED ")?;
        rest.parse()
            .map_err(|_| ClientError::Protocol(format!("bad push count {rest:?}")))
    }

    /// [`Client::push_rows`], but when the server sheds the batch with
    /// `OVERLOADED <retry-after-ms>` sleep the hinted backoff and retry,
    /// up to `max_retries` additional attempts.
    pub fn push_rows_retry(
        &mut self,
        stream: &str,
        rows: &[Row],
        max_retries: u32,
    ) -> Result<usize> {
        let mut attempts = 0;
        loop {
            match self.push_rows(stream, rows) {
                Err(ClientError::Overloaded { retry_after_ms }) if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                other => return other,
            }
        }
    }

    /// Parse a `CHUNK <query> <n> <seq>` header and read its `n` row
    /// lines (blocking — the server writes a frame contiguously).
    fn read_chunk_frame(&mut self, header: &str) -> Result<(u64, Vec<Row>)> {
        let Some(rest) = header.strip_prefix("CHUNK ") else {
            return Err(ClientError::Protocol(format!(
                "expected CHUNK frame, got {header:?}"
            )));
        };
        let mut it = rest.split_whitespace().skip(1);
        let count: usize = it
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad CHUNK header {header:?}")))?;
        let seq: u64 = it
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad CHUNK header {header:?}")))?;
        let mut rows = Vec::with_capacity(count);
        self.stream.set_read_timeout(None)?;
        for _ in 0..count {
            let line = self.read_line()?;
            rows.push(decode_row(&line).map_err(|e| ClientError::Protocol(e.0))?);
        }
        Ok((seq, rows))
    }

    /// Send `SUBSCRIBE` and parse the
    /// `OK SUBSCRIBED <id> <epoch> <next-seq> <names>` handshake.
    fn start_subscription(
        &mut self,
        query: u64,
        limit: Option<u64>,
        after: Option<(u64, u64)>,
    ) -> Result<(u64, u64, Vec<String>)> {
        let mut cmd = format!("SUBSCRIBE {query}");
        if let Some(n) = limit {
            cmd.push_str(&format!(" LIMIT {n}"));
        }
        if let Some((epoch, seq)) = after {
            cmd.push_str(&format!(" AFTER {epoch} {seq}"));
        }
        self.send_line(&cmd)?;
        let rest = self.expect_reply("OK SUBSCRIBED ")?;
        let mut it = rest.splitn(4, ' ');
        let bad = || ClientError::Protocol(format!("bad SUBSCRIBED handshake {rest:?}"));
        let _id = it.next().ok_or_else(bad)?;
        let epoch: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let next_seq: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let names = decode_names(it.next().unwrap_or(""))?;
        Ok((epoch, next_seq, names))
    }

    /// Read a `<tag> <line-count>` framed multi-line reply body.
    fn read_framed(&mut self, tag: &str) -> Result<String> {
        let rest = self.expect_reply(&format!("{tag} "))?;
        let lines: usize = rest
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad {tag} length {rest:?}")))?;
        let mut out = String::new();
        for _ in 0..lines {
            out.push_str(&self.read_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Full `STATS` report text.
    pub fn stats(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        self.read_framed("STATS")
    }

    /// Extended `STATS DETAIL` report (adds the per-factory analyze table
    /// and the lifecycle-latency percentile summary).
    pub fn stats_detail(&mut self) -> Result<String> {
        self.send_line("STATS DETAIL")?;
        self.read_framed("STATS")
    }

    /// Metrics registry snapshot in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String> {
        self.send_line("METRICS")?;
        self.read_framed("METRICS")
    }

    /// `EXPLAIN ANALYZE <id>`: the query's plan plus its observed-runtime
    /// row (firings, rows, latency percentiles).
    pub fn explain_analyze(&mut self, id: u64) -> Result<String> {
        self.send_line(&format!("EXPLAIN ANALYZE {id}"))?;
        self.read_framed("ANALYZE")
    }

    /// Drain the server's flight recorder (`n` most recent events, or all).
    pub fn trace_dump(&mut self, n: Option<usize>) -> Result<String> {
        match n {
            Some(n) => self.send_line(&format!("TRACE DUMP {n}"))?,
            None => self.send_line("TRACE DUMP")?,
        }
        self.read_framed("TRACE")
    }

    /// Enter streaming mode for `query`. With a limit the server ends the
    /// stream by itself after that many chunks.
    pub fn subscribe(&mut self, query: u64, limit: Option<u64>) -> Result<Subscription<'_>> {
        let (epoch, next_seq, names) = self.start_subscription(query, limit, None)?;
        Ok(Subscription {
            client: self,
            names,
            epoch,
            last_seq: next_seq.saturating_sub(1),
            finished: false,
        })
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send_line("SHUTDOWN")?;
        self.expect_reply("OK SHUTDOWN").map(|_| ())
    }

    /// Close the session politely.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        self.expect_reply("OK BYE").map(|_| ())
    }
}

fn decode_names(csv: &str) -> Result<Vec<String>> {
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    Ok(split_fields(csv)
        .map_err(|e| ClientError::Protocol(e.0))?
        .into_iter()
        .map(|f| f.text)
        .collect())
}

/// An active subscription: the connection is in streaming mode until
/// [`Subscription::stop`] or the server ends the stream (`LIMIT`,
/// deregistration, shutdown).
///
/// Leave streaming mode with [`Subscription::stop`] (or by observing
/// [`Subscription::finished`]) before reusing the [`Client`] for other
/// commands — merely dropping an unfinished subscription leaves the
/// server streaming on this connection, and subsequent commands would
/// read `CHUNK` frames as their replies.
pub struct Subscription<'a> {
    client: &'a mut Client,
    names: Vec<String>,
    epoch: u64,
    last_seq: u64,
    finished: bool,
}

impl Subscription<'_> {
    /// Output column names of the subscribed query.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resume coordinates `(epoch, seq)` of the latest chunk delivered —
    /// pass them to `SUBSCRIBE … AFTER <epoch> <seq>` on a fresh
    /// connection to continue the stream where this one stands.
    pub fn position(&self) -> (u64, u64) {
        (self.epoch, self.last_seq)
    }

    /// True once the server ended the stream (`OK STOPPED` seen).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Wait up to `timeout` for the next chunk. `Ok(None)` means either
    /// the timeout elapsed or the stream ended — check
    /// [`Subscription::finished`] to tell them apart.
    pub fn next_chunk(&mut self, timeout: Duration) -> Result<Option<Vec<Row>>> {
        if self.finished {
            return Ok(None);
        }
        self.client.stream.set_read_timeout(Some(timeout))?;
        let header = match self.client.reader.poll_line()? {
            ReadLine::Idle => return Ok(None),
            ReadLine::Eof => {
                self.finished = true;
                return Ok(None);
            }
            ReadLine::Overlong => {
                return Err(ClientError::Protocol(
                    "server frame line exceeds 1 MiB".into(),
                ))
            }
            ReadLine::Line(l) => l,
        };
        self.read_frame_body(&header)
    }

    /// Parse one frame starting at `header`, reading its rows (blocking —
    /// the server writes a frame contiguously).
    fn read_frame_body(&mut self, header: &str) -> Result<Option<Vec<Row>>> {
        if header.starts_with("OK STOPPED") {
            self.finished = true;
            return Ok(None);
        }
        let (seq, rows) = self.client.read_chunk_frame(header)?;
        self.last_seq = seq;
        Ok(Some(rows))
    }

    /// Leave streaming mode: send `STOP`, drain in-flight chunks, return
    /// them together with the final `(chunks, rows)` totals the server
    /// reported.
    pub fn stop(mut self) -> Result<(Vec<Vec<Row>>, u64, u64)> {
        if self.finished {
            return Ok((Vec::new(), 0, 0));
        }
        self.client.send_line("STOP")?;
        let mut tail = Vec::new();
        let (chunks, rows) = loop {
            self.client.stream.set_read_timeout(None)?;
            let line = self.client.read_line()?;
            if let Some(rest) = line.strip_prefix("OK STOPPED ") {
                self.finished = true;
                let mut it = rest.split_whitespace();
                let chunks = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                let rows = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                break (chunks, rows);
            }
            // A CHUNK frame raced with our STOP; keep it.
            if let Some(rows) = self.read_frame_body(&line)? {
                tail.push(rows);
            }
        };
        // Resync: if the server ended the stream on its own (LIMIT,
        // deregistration) in the instant before our STOP arrived, the
        // STOP was answered with an ERR in command mode that is still in
        // flight. A PING round-trip flushes it deterministically.
        self.client.send_line("PING")?;
        loop {
            let line = self.client.read_line()?;
            if line == "PONG" {
                return Ok((tail, chunks, rows));
            }
            if !line.starts_with("ERR ") {
                return Err(ClientError::Protocol(format!(
                    "unexpected line while resyncing after STOP: {line:?}"
                )));
            }
        }
    }
}

/// Reconnect/backoff knobs for [`ResumingSubscription`].
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Consecutive failed reconnect attempts before giving up.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt (plus jitter) up to `cap`.
    pub base_delay: Duration,
    /// Upper bound on the per-attempt delay.
    pub cap: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

/// Wall-clock jitter in `0..max(delay/2, 1ms)` — the server crate
/// deliberately carries no RNG dependency, and de-synchronising a herd
/// of reconnecting clients only needs *spread*, not randomness quality.
fn jitter(delay: Duration) -> Duration {
    let span_ms = (delay.as_millis() as u64 / 2).max(1);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    Duration::from_millis(nanos % span_ms)
}

/// One streaming-mode read, decoded.
enum Poll {
    Idle,
    Chunk { seq: u64, rows: Vec<Row> },
    Stopped,
}

/// A subscription that **owns** its connection and survives losing it.
///
/// When the socket dies mid-stream the subscription reconnects with
/// jittered exponential backoff (see [`ReconnectPolicy`]) and re-attaches
/// with `SUBSCRIBE <id> AFTER <epoch> <seq>`, so the server's replay ring
/// redelivers exactly the chunks this client has not seen — including
/// across a server restart (the epoch changes and the new incarnation
/// replays everything it retains for the query).
///
/// End-of-stream semantics: `OK STOPPED` on the wire is ambiguous — both
/// graceful server shutdown and query deregistration end the stream that
/// way. The subscription resolves it by re-attaching: if the new
/// incarnation immediately ends the stream again without delivering a
/// single chunk, the query is gone and [`ResumingSubscription::finished`]
/// becomes true; otherwise the stream simply continues.
pub struct ResumingSubscription {
    addr: String,
    query: u64,
    policy: ReconnectPolicy,
    client: Option<Client>,
    names: Vec<String>,
    epoch: u64,
    last_seq: u64,
    attached_once: bool,
    chunks_since_attach: u64,
    reconnects: u64,
    finished: bool,
}

impl ResumingSubscription {
    /// Subscribe to `query` at `addr` with the default reconnect policy.
    pub fn connect(addr: impl Into<String>, query: u64) -> Result<ResumingSubscription> {
        ResumingSubscription::connect_with(addr, query, ReconnectPolicy::default())
    }

    /// Subscribe with an explicit reconnect policy.
    pub fn connect_with(
        addr: impl Into<String>,
        query: u64,
        policy: ReconnectPolicy,
    ) -> Result<ResumingSubscription> {
        let mut sub = ResumingSubscription {
            addr: addr.into(),
            query,
            policy,
            client: None,
            names: Vec::new(),
            epoch: 0,
            last_seq: 0,
            attached_once: false,
            chunks_since_attach: 0,
            reconnects: 0,
            finished: false,
        };
        sub.attach()?;
        Ok(sub)
    }

    /// Output column names of the subscribed query.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resume coordinates `(epoch, seq)` of the latest chunk delivered.
    pub fn position(&self) -> (u64, u64) {
        (self.epoch, self.last_seq)
    }

    /// How many times the subscription re-attached after losing its
    /// connection (or riding out a server restart).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// True once the stream ended for good (query deregistered).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Connect and (re-)enter streaming mode, resuming after the last
    /// chunk seen if this is a re-attach.
    fn attach(&mut self) -> Result<()> {
        let mut client = Client::connect(self.addr.as_str())?;
        let after = if self.attached_once {
            Some((self.epoch, self.last_seq))
        } else {
            None
        };
        let (epoch, next_seq, names) = client.start_subscription(self.query, None, after)?;
        if epoch != self.epoch {
            // New server incarnation: fresh sequence space. The server
            // replays everything it still retains for this query, so our
            // cursor restarts just behind whatever is about to arrive.
            self.epoch = epoch;
            self.last_seq = next_seq.saturating_sub(1);
        }
        self.names = names;
        self.attached_once = true;
        self.chunks_since_attach = 0;
        self.client = Some(client);
        Ok(())
    }

    /// Reconnect with jittered exponential backoff until attached or the
    /// policy's attempt budget runs out.
    fn reattach(&mut self) -> Result<()> {
        self.client = None;
        let mut delay = self.policy.base_delay;
        let mut last_err = ClientError::Protocol("reconnect budget is zero".into());
        for _ in 0..self.policy.max_attempts.max(1) {
            std::thread::sleep(delay + jitter(delay));
            match self.attach() {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
            delay = delay.saturating_mul(2).min(self.policy.cap);
        }
        Err(last_err)
    }

    /// One streaming read on an attached connection.
    fn poll(client: &mut Client, timeout: Duration) -> Result<Poll> {
        client.stream.set_read_timeout(Some(timeout))?;
        let header = match client.reader.poll_line()? {
            ReadLine::Idle => return Ok(Poll::Idle),
            ReadLine::Eof => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            ReadLine::Overlong => {
                return Err(ClientError::Protocol(
                    "server frame line exceeds 1 MiB".into(),
                ))
            }
            ReadLine::Line(l) => l,
        };
        if header.starts_with("OK STOPPED") {
            return Ok(Poll::Stopped);
        }
        let (seq, rows) = client.read_chunk_frame(&header)?;
        Ok(Poll::Chunk { seq, rows })
    }

    /// Wait up to `timeout` for the next chunk, transparently
    /// reconnecting and resuming if the connection dies. `Ok(None)` means
    /// either an idle timeout or the stream genuinely ended — check
    /// [`ResumingSubscription::finished`]. Reconnect backoff happens
    /// inside this call, so one invocation can take longer than
    /// `timeout` while a reconnect is in progress.
    pub fn next_chunk(&mut self, timeout: Duration) -> Result<Option<Vec<Row>>> {
        if self.finished {
            return Ok(None);
        }
        loop {
            if self.client.is_none() {
                self.reattach()?;
            }
            let step = match self.client.as_mut() {
                Some(client) => ResumingSubscription::poll(client, timeout),
                None => continue,
            };
            match step {
                Ok(Poll::Idle) => return Ok(None),
                Ok(Poll::Chunk { seq, rows }) => {
                    if seq <= self.last_seq {
                        // Defensive: never deliver a chunk twice.
                        continue;
                    }
                    self.last_seq = seq;
                    self.chunks_since_attach += 1;
                    return Ok(Some(rows));
                }
                Ok(Poll::Stopped) => {
                    if self.chunks_since_attach == 0 {
                        // Re-attached and the stream ended again without a
                        // single chunk: the query is gone.
                        self.finished = true;
                        self.client = None;
                        return Ok(None);
                    }
                    // Probably a server shutdown/restart: re-attach and
                    // let the replay ring arbitrate what we still get.
                    self.client = None;
                }
                Err(ClientError::Io(_)) => {
                    // Connection died mid-stream; resume on a fresh one.
                    self.client = None;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
