//! Blocking wire-protocol client — used by the integration tests, the
//! `datacell-cli` binary and the `e10_server` load generator.
//!
//! Two levels of resilience are available:
//!
//! * [`Client::push_rows_retry`] backs off and retries when the server
//!   sheds the push with `OVERLOADED <retry-after-ms>`;
//! * [`ResumingSubscription`] owns its connection and transparently
//!   reconnects (jittered exponential backoff) when the socket dies,
//!   re-attaching with `SUBSCRIBE … AFTER <epoch> <seq>` so the stream
//!   resumes at the last chunk it saw — across server restarts too.
//!
//! Both work in **text** or **binary** wire mode. [`Client::connect_binary`]
//! (or [`Client::hello_binary`] on an open connection) negotiates
//! `HELLO BINARY <version>`; afterwards commands travel as TEXT frames,
//! ingest as columnar PUSH frames (the row schema is fetched once per
//! stream via `SCHEMA`), and subscription results arrive as columnar
//! CHUNK frames — same replies, same resume coordinates, so everything
//! above the framing layer is mode-agnostic.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use datacell_core::ExecutionMode;
use datacell_storage::binio::{self, ByteReader};
use datacell_storage::{Row, Schema};

use crate::frame::{self, Frame, FrameBuf};
use crate::protocol::{decode_hex, decode_row, encode_row, split_fields, PUSH_END};
use crate::session::{LineReader, ReadLine};

/// Socket read granularity in binary mode.
const FRAME_READ_BUF: usize = 64 * 1024;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something outside the protocol grammar.
    Protocol(String),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server shed the request under admission control
    /// (`OVERLOADED <retry-after-ms>`). Retry after the hinted backoff —
    /// or let [`Client::push_rows_retry`] do it for you.
    Overloaded {
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded: retry in {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Decoded reply of [`Client::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecReply {
    /// `OK CREATED <name>`.
    Created(String),
    /// `OK DROPPED <name>`.
    Dropped(String),
    /// `OK INSERTED <n>`.
    Inserted(usize),
    /// `ROWS <n> <names>` + rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Decoded result rows.
        rows: Vec<Row>,
    },
}

/// One mode-aware wire read: what the server produced next.
#[derive(Debug)]
enum Wire {
    /// A reply line (TEXT frame line in binary mode).
    Line(String),
    /// One result chunk with its delivery sequence number.
    Chunk {
        seq: u64,
        rows: Vec<Row>,
    },
    /// Read timeout elapsed with no complete line/frame.
    Idle,
    /// Peer closed the connection.
    Eof,
}

/// A blocking connection to a DataCell server.
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
    /// True after `HELLO BINARY` negotiation: both directions are frames.
    binary: bool,
    /// Frame accumulator (binary mode only).
    fbuf: FrameBuf,
    /// Decoded-but-undelivered wire events, in arrival order.
    pending: VecDeque<Wire>,
    /// Per-stream schema cache for columnar PUSH encoding.
    schemas: Vec<(String, Schema)>,
}

impl Client {
    /// Connect to a server (text mode).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            binary: false,
            fbuf: FrameBuf::new(),
            pending: VecDeque::new(),
            schemas: Vec::new(),
        })
    }

    /// Connect and negotiate the binary wire protocol.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Client> {
        let mut client = Client::connect(addr)?;
        client.hello_binary()?;
        Ok(client)
    }

    /// True once the connection speaks frames in both directions.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Negotiate binary mode on an open text-mode connection:
    /// `HELLO BINARY <version>` → `OK HELLO BINARY <version>`, after which
    /// both directions switch to length-prefixed frames. Idempotent.
    pub fn hello_binary(&mut self) -> Result<()> {
        if self.binary {
            return Ok(());
        }
        self.send_line(&format!("HELLO BINARY {}", binio::WIRE_VERSION))?;
        let line = self.read_line()?;
        let expected = format!("OK HELLO BINARY {}", binio::WIRE_VERSION);
        if line != expected {
            return Err(ClientError::Protocol(format!(
                "unexpected HELLO reply {line:?} (expected {expected:?})"
            )));
        }
        self.binary = true;
        // Anything the line reader buffered past the OK line is already
        // frame bytes — hand it to the frame accumulator.
        let leftover = self.reader.take_buffered();
        self.fbuf.push_bytes(&leftover);
        Ok(())
    }

    /// Send one command line as a **single** write: text mode appends the
    /// newline before writing (two `write_all`s could interleave with a
    /// concurrent writer on a cloned handle, and cost an extra packet
    /// with `TCP_NODELAY`); binary mode wraps the line in a TEXT frame.
    fn send_line(&mut self, line: &str) -> Result<()> {
        if self.binary {
            self.stream.write_all(&frame::encode_text(line))?;
        } else {
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            self.stream.write_all(&buf)?;
        }
        Ok(())
    }

    /// Pull the next wire event in binary mode: drain decoded events,
    /// then whole frames out of the accumulator, then the socket.
    fn read_event_binary(&mut self, timeout: Option<Duration>) -> Result<Wire> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(ev);
            }
            let mut decoded = false;
            while let Some((tag, payload)) =
                self.fbuf.next_frame().map_err(|e| ClientError::Protocol(e.0))?
            {
                match frame::decode_frame(tag, &payload)
                    .map_err(|e| ClientError::Protocol(e.0))?
                {
                    Frame::Text(text) => {
                        for line in text.lines() {
                            self.pending.push_back(Wire::Line(line.to_owned()));
                            decoded = true;
                        }
                    }
                    Frame::Chunk { seq, chunk, .. } => {
                        self.pending.push_back(Wire::Chunk {
                            seq,
                            rows: chunk.rows().collect(),
                        });
                        decoded = true;
                    }
                    Frame::Push { .. } => {
                        return Err(ClientError::Protocol(
                            "PUSH frames flow client to server only".into(),
                        ));
                    }
                }
            }
            if decoded {
                continue;
            }
            self.stream.set_read_timeout(timeout)?;
            let mut buf = [0u8; FRAME_READ_BUF];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(Wire::Eof),
                Ok(n) => self.fbuf.push_bytes(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Wire::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One streaming-mode wire read: a chunk, a control line
    /// (`OK STOPPED` / `ERR` / `PONG`), idle, or EOF — mode-agnostic.
    fn read_stream_event(&mut self, timeout: Option<Duration>) -> Result<Wire> {
        if self.binary {
            return self.read_event_binary(timeout);
        }
        self.stream.set_read_timeout(timeout)?;
        match self.reader.poll_line()? {
            ReadLine::Idle => Ok(Wire::Idle),
            ReadLine::Eof => Ok(Wire::Eof),
            ReadLine::Overlong => {
                Err(ClientError::Protocol("server frame line exceeds 1 MiB".into()))
            }
            ReadLine::Line(l) => {
                if l.starts_with("CHUNK ") {
                    let (seq, rows) = self.read_chunk_frame(&l)?;
                    Ok(Wire::Chunk { seq, rows })
                } else {
                    Ok(Wire::Line(l))
                }
            }
        }
    }

    /// Read one reply line, blocking indefinitely.
    fn read_line(&mut self) -> Result<String> {
        if self.binary {
            return match self.read_event_binary(None)? {
                Wire::Line(l) => Ok(l),
                Wire::Chunk { .. } => Err(ClientError::Protocol(
                    "unexpected CHUNK frame while awaiting a reply line".into(),
                )),
                Wire::Eof => Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))),
                Wire::Idle => Err(ClientError::Protocol("idle on blocking read".into())),
            };
        }
        self.stream.set_read_timeout(None)?;
        match self.reader.poll_line()? {
            ReadLine::Line(l) => Ok(l),
            ReadLine::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            ReadLine::Overlong => {
                Err(ClientError::Protocol("server reply line exceeds 1 MiB".into()))
            }
            ReadLine::Idle => Err(ClientError::Protocol("idle on blocking read".into())),
        }
    }

    /// Read one reply line, surfacing `ERR` as [`ClientError::Server`]
    /// and `OVERLOADED` as [`ClientError::Overloaded`].
    fn read_reply(&mut self) -> Result<String> {
        let line = self.read_line()?;
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(ClientError::Server(msg.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OVERLOADED ") {
            let retry_after_ms = rest.trim().parse().map_err(|_| {
                ClientError::Protocol(format!("bad OVERLOADED hint {line:?}"))
            })?;
            return Err(ClientError::Overloaded { retry_after_ms });
        }
        Ok(line)
    }

    fn expect_reply(&mut self, prefix: &str) -> Result<String> {
        let line = self.read_reply()?;
        line.strip_prefix(prefix)
            .map(|rest| rest.trim().to_owned())
            .ok_or_else(|| {
                ClientError::Protocol(format!("expected {prefix:?}, got {line:?}"))
            })
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<()> {
        self.send_line("PING")?;
        let line = self.read_reply()?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected PONG, got {line:?}")))
        }
    }

    /// Run one SQL statement.
    pub fn exec(&mut self, sql: &str) -> Result<ExecReply> {
        self.send_line(&format!("EXEC {sql}"))?;
        let line = self.read_reply()?;
        if let Some(rest) = line.strip_prefix("OK CREATED ") {
            return Ok(ExecReply::Created(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK DROPPED ") {
            return Ok(ExecReply::Dropped(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK INSERTED ") {
            let n = rest
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad count {rest:?}")))?;
            return Ok(ExecReply::Inserted(n));
        }
        if let Some(rest) = line.strip_prefix("ROWS ") {
            let (count, names) = rest
                .split_once(' ')
                .map(|(c, n)| (c, n.to_owned()))
                .unwrap_or((rest, String::new()));
            let count: usize = count
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad row count in {line:?}")))?;
            let names = decode_names(&names)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let row_line = self.read_line()?;
                rows.push(
                    decode_row(&row_line).map_err(|e| ClientError::Protocol(e.0))?,
                );
            }
            return Ok(ExecReply::Rows { names, rows });
        }
        Err(ClientError::Protocol(format!("unexpected EXEC reply {line:?}")))
    }

    /// Register a continuous query, returning its id.
    pub fn register(&mut self, sql: &str) -> Result<u64> {
        self.send_line(&format!("REGISTER {sql}"))?;
        self.read_query_id()
    }

    /// Register with an explicit execution mode.
    pub fn register_with_mode(&mut self, sql: &str, mode: ExecutionMode) -> Result<u64> {
        let kw = match mode {
            ExecutionMode::Incremental => "INCREMENTAL",
            ExecutionMode::Reevaluate => "REEVAL",
        };
        self.send_line(&format!("REGISTER {kw} {sql}"))?;
        self.read_query_id()
    }

    fn read_query_id(&mut self) -> Result<u64> {
        let rest = self.expect_reply("OK QUERY ")?;
        rest.parse()
            .map_err(|_| ClientError::Protocol(format!("bad query id {rest:?}")))
    }

    /// Deregister a continuous query.
    pub fn deregister(&mut self, id: u64) -> Result<()> {
        self.send_line(&format!("DEREGISTER {id}"))?;
        self.expect_reply("OK DEREGISTERED ").map(|_| ())
    }

    /// Fetch (and cache) a stream's schema via `SCHEMA <stream>` — the
    /// client-side half of columnar PUSH encoding. Public so latency-
    /// sensitive producers can prefetch instead of paying the round trip
    /// on their first [`push_rows`](Self::push_rows).
    pub fn schema_of(&mut self, stream: &str) -> Result<Schema> {
        if let Some((_, s)) = self.schemas.iter().find(|(n, _)| n == stream) {
            return Ok(s.clone());
        }
        self.send_line(&format!("SCHEMA {stream}"))?;
        let rest = self.expect_reply("OK SCHEMA ")?;
        let (name, hex) = rest.split_once(' ').ok_or_else(|| {
            ClientError::Protocol(format!("bad SCHEMA reply {rest:?}"))
        })?;
        if name != stream {
            return Err(ClientError::Protocol(format!(
                "SCHEMA reply names {name:?}, asked for {stream:?}"
            )));
        }
        let bytes = decode_hex(hex).map_err(|e| ClientError::Protocol(e.0))?;
        let mut r = ByteReader::new(&bytes);
        let schema = binio::decode_schema(&mut r)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.schemas.push((stream.to_owned(), schema.clone()));
        Ok(schema)
    }

    /// Bulk-ingest rows into a stream (the socket-receptor path). Returns
    /// how many rows the basket accepted.
    ///
    /// Text mode sends the multi-line `PUSH … END` block; binary mode
    /// encodes one columnar PUSH frame against the stream's schema
    /// (fetched once via `SCHEMA` and cached per connection). Either way
    /// the batch leaves in a single write.
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize> {
        if self.binary {
            let schema = self.schema_of(stream)?;
            let bytes = frame::encode_push_frame(stream, &schema, rows)
                .map_err(|e| ClientError::Protocol(e.0))?;
            self.stream.write_all(&bytes)?;
        } else {
            let mut block = format!("PUSH {stream}\n");
            for row in rows {
                block.push_str(&encode_row(row));
                block.push('\n');
            }
            block.push_str(PUSH_END);
            block.push('\n');
            self.stream.write_all(block.as_bytes())?;
        }
        match self.expect_reply("OK PUSHED ") {
            Ok(rest) => rest
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad push count {rest:?}"))),
            Err(e) => {
                // A server-side rejection may mean the stream was dropped
                // and recreated with a different shape — forget the cached
                // schema so the next attempt re-fetches it.
                if matches!(e, ClientError::Server(_)) {
                    self.schemas.retain(|(n, _)| n != stream);
                }
                Err(e)
            }
        }
    }

    /// [`Client::push_rows`], but when the server sheds the batch with
    /// `OVERLOADED <retry-after-ms>` sleep the hinted backoff and retry,
    /// up to `max_retries` additional attempts.
    pub fn push_rows_retry(
        &mut self,
        stream: &str,
        rows: &[Row],
        max_retries: u32,
    ) -> Result<usize> {
        let mut attempts = 0;
        loop {
            match self.push_rows(stream, rows) {
                Err(ClientError::Overloaded { retry_after_ms }) if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                other => return other,
            }
        }
    }

    /// Parse a `CHUNK <query> <n> <seq>` header and read its `n` row
    /// lines (blocking — the server writes a frame contiguously).
    fn read_chunk_frame(&mut self, header: &str) -> Result<(u64, Vec<Row>)> {
        let Some(rest) = header.strip_prefix("CHUNK ") else {
            return Err(ClientError::Protocol(format!(
                "expected CHUNK frame, got {header:?}"
            )));
        };
        let mut it = rest.split_whitespace().skip(1);
        let count: usize = it
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad CHUNK header {header:?}")))?;
        let seq: u64 = it
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad CHUNK header {header:?}")))?;
        let mut rows = Vec::with_capacity(count);
        self.stream.set_read_timeout(None)?;
        for _ in 0..count {
            let line = self.read_line()?;
            rows.push(decode_row(&line).map_err(|e| ClientError::Protocol(e.0))?);
        }
        Ok((seq, rows))
    }

    /// Send `SUBSCRIBE` and parse the
    /// `OK SUBSCRIBED <id> <epoch> <next-seq> <names>` handshake.
    fn start_subscription(
        &mut self,
        query: u64,
        limit: Option<u64>,
        after: Option<(u64, u64)>,
    ) -> Result<(u64, u64, Vec<String>)> {
        let mut cmd = format!("SUBSCRIBE {query}");
        if let Some(n) = limit {
            cmd.push_str(&format!(" LIMIT {n}"));
        }
        if let Some((epoch, seq)) = after {
            cmd.push_str(&format!(" AFTER {epoch} {seq}"));
        }
        self.send_line(&cmd)?;
        let rest = self.expect_reply("OK SUBSCRIBED ")?;
        let mut it = rest.splitn(4, ' ');
        let bad = || ClientError::Protocol(format!("bad SUBSCRIBED handshake {rest:?}"));
        let _id = it.next().ok_or_else(bad)?;
        let epoch: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let next_seq: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let names = decode_names(it.next().unwrap_or(""))?;
        Ok((epoch, next_seq, names))
    }

    /// Read a `<tag> <line-count>` framed multi-line reply body.
    fn read_framed(&mut self, tag: &str) -> Result<String> {
        let rest = self.expect_reply(&format!("{tag} "))?;
        let lines: usize = rest
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad {tag} length {rest:?}")))?;
        let mut out = String::new();
        for _ in 0..lines {
            out.push_str(&self.read_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Full `STATS` report text.
    pub fn stats(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        self.read_framed("STATS")
    }

    /// Extended `STATS DETAIL` report (adds the per-factory analyze table
    /// and the lifecycle-latency percentile summary).
    pub fn stats_detail(&mut self) -> Result<String> {
        self.send_line("STATS DETAIL")?;
        self.read_framed("STATS")
    }

    /// Metrics registry snapshot in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String> {
        self.send_line("METRICS")?;
        self.read_framed("METRICS")
    }

    /// `EXPLAIN ANALYZE <id>`: the query's plan plus its observed-runtime
    /// row (firings, rows, latency percentiles).
    pub fn explain_analyze(&mut self, id: u64) -> Result<String> {
        self.send_line(&format!("EXPLAIN ANALYZE {id}"))?;
        self.read_framed("ANALYZE")
    }

    /// Drain the server's flight recorder (`n` most recent events, or all).
    pub fn trace_dump(&mut self, n: Option<usize>) -> Result<String> {
        match n {
            Some(n) => self.send_line(&format!("TRACE DUMP {n}"))?,
            None => self.send_line("TRACE DUMP")?,
        }
        self.read_framed("TRACE")
    }

    /// Enter streaming mode for `query`. With a limit the server ends the
    /// stream by itself after that many chunks.
    pub fn subscribe(&mut self, query: u64, limit: Option<u64>) -> Result<Subscription<'_>> {
        let (epoch, next_seq, names) = self.start_subscription(query, limit, None)?;
        Ok(Subscription {
            client: self,
            names,
            epoch,
            last_seq: next_seq.saturating_sub(1),
            finished: false,
        })
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send_line("SHUTDOWN")?;
        self.expect_reply("OK SHUTDOWN").map(|_| ())
    }

    /// Close the session politely.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        self.expect_reply("OK BYE").map(|_| ())
    }
}

fn decode_names(csv: &str) -> Result<Vec<String>> {
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    Ok(split_fields(csv)
        .map_err(|e| ClientError::Protocol(e.0))?
        .into_iter()
        .map(|f| f.text)
        .collect())
}

/// An active subscription: the connection is in streaming mode until
/// [`Subscription::stop`] or the server ends the stream (`LIMIT`,
/// deregistration, shutdown).
///
/// Leave streaming mode with [`Subscription::stop`] (or by observing
/// [`Subscription::finished`]) before reusing the [`Client`] for other
/// commands — merely dropping an unfinished subscription leaves the
/// server streaming on this connection, and subsequent commands would
/// read `CHUNK` frames as their replies.
pub struct Subscription<'a> {
    client: &'a mut Client,
    names: Vec<String>,
    epoch: u64,
    last_seq: u64,
    finished: bool,
}

impl Subscription<'_> {
    /// Output column names of the subscribed query.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resume coordinates `(epoch, seq)` of the latest chunk delivered —
    /// pass them to `SUBSCRIBE … AFTER <epoch> <seq>` on a fresh
    /// connection to continue the stream where this one stands.
    pub fn position(&self) -> (u64, u64) {
        (self.epoch, self.last_seq)
    }

    /// True once the server ended the stream (`OK STOPPED` seen).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Wait up to `timeout` for the next chunk. `Ok(None)` means either
    /// the timeout elapsed or the stream ended — check
    /// [`Subscription::finished`] to tell them apart.
    pub fn next_chunk(&mut self, timeout: Duration) -> Result<Option<Vec<Row>>> {
        if self.finished {
            return Ok(None);
        }
        match self.client.read_stream_event(Some(timeout))? {
            Wire::Idle => Ok(None),
            Wire::Eof => {
                self.finished = true;
                Ok(None)
            }
            Wire::Line(l) if l.starts_with("OK STOPPED") => {
                self.finished = true;
                Ok(None)
            }
            Wire::Line(l) => Err(ClientError::Protocol(format!(
                "expected CHUNK frame, got {l:?}"
            ))),
            Wire::Chunk { seq, rows } => {
                self.last_seq = seq;
                Ok(Some(rows))
            }
        }
    }

    /// Leave streaming mode: send `STOP`, drain in-flight chunks, return
    /// them together with the final `(chunks, rows)` totals the server
    /// reported.
    pub fn stop(mut self) -> Result<(Vec<Vec<Row>>, u64, u64)> {
        if self.finished {
            return Ok((Vec::new(), 0, 0));
        }
        self.client.send_line("STOP")?;
        let mut tail = Vec::new();
        let (chunks, rows) = loop {
            match self.client.read_stream_event(None)? {
                Wire::Line(line) => {
                    let Some(rest) = line.strip_prefix("OK STOPPED ") else {
                        return Err(ClientError::Protocol(format!(
                            "expected CHUNK frame, got {line:?}"
                        )));
                    };
                    self.finished = true;
                    let mut it = rest.split_whitespace();
                    let chunks = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                    let rows = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                    break (chunks, rows);
                }
                // A CHUNK frame raced with our STOP; keep it.
                Wire::Chunk { seq, rows } => {
                    self.last_seq = seq;
                    tail.push(rows);
                }
                Wire::Idle => {
                    return Err(ClientError::Protocol("idle on blocking read".into()))
                }
                Wire::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
            }
        };
        // Resync: if the server ended the stream on its own (LIMIT,
        // deregistration) in the instant before our STOP arrived, the
        // STOP was answered with an ERR in command mode that is still in
        // flight. A PING round-trip flushes it deterministically.
        self.client.send_line("PING")?;
        loop {
            let line = self.client.read_line()?;
            if line == "PONG" {
                return Ok((tail, chunks, rows));
            }
            if !line.starts_with("ERR ") {
                return Err(ClientError::Protocol(format!(
                    "unexpected line while resyncing after STOP: {line:?}"
                )));
            }
        }
    }
}

/// Reconnect/backoff knobs for [`ResumingSubscription`].
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Consecutive failed reconnect attempts before giving up.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt (plus jitter) up to `cap`.
    pub base_delay: Duration,
    /// Upper bound on the per-attempt delay.
    pub cap: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

/// Wall-clock jitter in `0..max(delay/2, 1ms)` — the server crate
/// deliberately carries no RNG dependency, and de-synchronising a herd
/// of reconnecting clients only needs *spread*, not randomness quality.
fn jitter(delay: Duration) -> Duration {
    let span_ms = (delay.as_millis() as u64 / 2).max(1);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    Duration::from_millis(nanos % span_ms)
}

/// One streaming-mode read, decoded.
enum Poll {
    Idle,
    Chunk { seq: u64, rows: Vec<Row> },
    Stopped,
}

/// A subscription that **owns** its connection and survives losing it.
///
/// When the socket dies mid-stream the subscription reconnects with
/// jittered exponential backoff (see [`ReconnectPolicy`]) and re-attaches
/// with `SUBSCRIBE <id> AFTER <epoch> <seq>`, so the server's replay ring
/// redelivers exactly the chunks this client has not seen — including
/// across a server restart (the epoch changes and the new incarnation
/// replays everything it retains for the query).
///
/// End-of-stream semantics: `OK STOPPED` on the wire is ambiguous — both
/// graceful server shutdown and query deregistration end the stream that
/// way. The subscription resolves it by re-attaching: if the new
/// incarnation immediately ends the stream again without delivering a
/// single chunk, the query is gone and [`ResumingSubscription::finished`]
/// becomes true; otherwise the stream simply continues.
pub struct ResumingSubscription {
    addr: String,
    query: u64,
    policy: ReconnectPolicy,
    binary: bool,
    client: Option<Client>,
    names: Vec<String>,
    epoch: u64,
    last_seq: u64,
    attached_once: bool,
    chunks_since_attach: u64,
    reconnects: u64,
    finished: bool,
}

impl ResumingSubscription {
    /// Subscribe to `query` at `addr` with the default reconnect policy.
    pub fn connect(addr: impl Into<String>, query: u64) -> Result<ResumingSubscription> {
        ResumingSubscription::connect_with(addr, query, ReconnectPolicy::default())
    }

    /// Subscribe with an explicit reconnect policy.
    pub fn connect_with(
        addr: impl Into<String>,
        query: u64,
        policy: ReconnectPolicy,
    ) -> Result<ResumingSubscription> {
        ResumingSubscription::connect_mode(addr, query, policy, false)
    }

    /// Subscribe over the binary wire protocol (default reconnect
    /// policy). Every attach — including reconnects after a lost socket
    /// or server restart — renegotiates `HELLO BINARY` before resuming
    /// with `AFTER <epoch> <seq>`.
    pub fn connect_binary(addr: impl Into<String>, query: u64) -> Result<ResumingSubscription> {
        ResumingSubscription::connect_mode(addr, query, ReconnectPolicy::default(), true)
    }

    /// Binary-mode subscribe with an explicit reconnect policy.
    pub fn connect_binary_with(
        addr: impl Into<String>,
        query: u64,
        policy: ReconnectPolicy,
    ) -> Result<ResumingSubscription> {
        ResumingSubscription::connect_mode(addr, query, policy, true)
    }

    fn connect_mode(
        addr: impl Into<String>,
        query: u64,
        policy: ReconnectPolicy,
        binary: bool,
    ) -> Result<ResumingSubscription> {
        let mut sub = ResumingSubscription {
            addr: addr.into(),
            query,
            policy,
            binary,
            client: None,
            names: Vec::new(),
            epoch: 0,
            last_seq: 0,
            attached_once: false,
            chunks_since_attach: 0,
            reconnects: 0,
            finished: false,
        };
        sub.attach()?;
        Ok(sub)
    }

    /// Output column names of the subscribed query.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resume coordinates `(epoch, seq)` of the latest chunk delivered.
    pub fn position(&self) -> (u64, u64) {
        (self.epoch, self.last_seq)
    }

    /// How many times the subscription re-attached after losing its
    /// connection (or riding out a server restart).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// True once the stream ended for good (query deregistered).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Connect and (re-)enter streaming mode, resuming after the last
    /// chunk seen if this is a re-attach.
    fn attach(&mut self) -> Result<()> {
        let mut client = Client::connect(self.addr.as_str())?;
        if self.binary {
            client.hello_binary()?;
        }
        let after = if self.attached_once {
            Some((self.epoch, self.last_seq))
        } else {
            None
        };
        let (epoch, next_seq, names) = client.start_subscription(self.query, None, after)?;
        if epoch != self.epoch {
            // New server incarnation: fresh sequence space. The server
            // replays everything it still retains for this query, so our
            // cursor restarts just behind whatever is about to arrive.
            self.epoch = epoch;
            self.last_seq = next_seq.saturating_sub(1);
        }
        self.names = names;
        self.attached_once = true;
        self.chunks_since_attach = 0;
        self.client = Some(client);
        Ok(())
    }

    /// Reconnect with jittered exponential backoff until attached or the
    /// policy's attempt budget runs out.
    fn reattach(&mut self) -> Result<()> {
        self.client = None;
        let mut delay = self.policy.base_delay;
        let mut last_err = ClientError::Protocol("reconnect budget is zero".into());
        for _ in 0..self.policy.max_attempts.max(1) {
            std::thread::sleep(delay + jitter(delay));
            match self.attach() {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
            delay = delay.saturating_mul(2).min(self.policy.cap);
        }
        Err(last_err)
    }

    /// One streaming read on an attached connection.
    fn poll(client: &mut Client, timeout: Duration) -> Result<Poll> {
        match client.read_stream_event(Some(timeout))? {
            Wire::Idle => Ok(Poll::Idle),
            Wire::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Wire::Line(l) if l.starts_with("OK STOPPED") => Ok(Poll::Stopped),
            Wire::Line(l) => Err(ClientError::Protocol(format!(
                "expected CHUNK frame, got {l:?}"
            ))),
            Wire::Chunk { seq, rows } => Ok(Poll::Chunk { seq, rows }),
        }
    }

    /// Wait up to `timeout` for the next chunk, transparently
    /// reconnecting and resuming if the connection dies. `Ok(None)` means
    /// either an idle timeout or the stream genuinely ended — check
    /// [`ResumingSubscription::finished`]. Reconnect backoff happens
    /// inside this call, so one invocation can take longer than
    /// `timeout` while a reconnect is in progress.
    pub fn next_chunk(&mut self, timeout: Duration) -> Result<Option<Vec<Row>>> {
        if self.finished {
            return Ok(None);
        }
        loop {
            if self.client.is_none() {
                self.reattach()?;
            }
            let step = match self.client.as_mut() {
                Some(client) => ResumingSubscription::poll(client, timeout),
                None => continue,
            };
            match step {
                Ok(Poll::Idle) => return Ok(None),
                Ok(Poll::Chunk { seq, rows }) => {
                    if seq <= self.last_seq {
                        // Defensive: never deliver a chunk twice.
                        continue;
                    }
                    self.last_seq = seq;
                    self.chunks_since_attach += 1;
                    return Ok(Some(rows));
                }
                Ok(Poll::Stopped) => {
                    if self.chunks_since_attach == 0 {
                        // Re-attached and the stream ended again without a
                        // single chunk: the query is gone.
                        self.finished = true;
                        self.client = None;
                        return Ok(None);
                    }
                    // Probably a server shutdown/restart: re-attach and
                    // let the replay ring arbitrate what we still get.
                    self.client = None;
                }
                Err(ClientError::Io(_)) => {
                    // Connection died mid-stream; resume on a fresh one.
                    self.client = None;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
