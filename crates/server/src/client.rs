//! Blocking wire-protocol client — used by the integration tests, the
//! `datacell-cli` binary and the `e10_server` load generator.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use datacell_core::ExecutionMode;
use datacell_storage::Row;

use crate::protocol::{decode_row, encode_row, split_fields, PUSH_END};
use crate::session::{LineReader, ReadLine};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something outside the protocol grammar.
    Protocol(String),
    /// The server answered `ERR <message>`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Decoded reply of [`Client::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecReply {
    /// `OK CREATED <name>`.
    Created(String),
    /// `OK DROPPED <name>`.
    Dropped(String),
    /// `OK INSERTED <n>`.
    Inserted(usize),
    /// `ROWS <n> <names>` + rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Decoded result rows.
        rows: Vec<Row>,
    },
}

/// A blocking connection to a DataCell server.
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    fn send_line(&mut self, line: &str) -> Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        Ok(())
    }

    /// Read one reply line, blocking indefinitely.
    fn read_line(&mut self) -> Result<String> {
        self.stream.set_read_timeout(None)?;
        match self.reader.poll_line()? {
            ReadLine::Line(l) => Ok(l),
            ReadLine::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            ReadLine::Overlong => {
                Err(ClientError::Protocol("server reply line exceeds 1 MiB".into()))
            }
            ReadLine::Idle => Err(ClientError::Protocol("idle on blocking read".into())),
        }
    }

    /// Read one reply line, surfacing `ERR` as [`ClientError::Server`].
    fn read_reply(&mut self) -> Result<String> {
        let line = self.read_line()?;
        match line.strip_prefix("ERR ") {
            Some(msg) => Err(ClientError::Server(msg.to_owned())),
            None => Ok(line),
        }
    }

    fn expect_reply(&mut self, prefix: &str) -> Result<String> {
        let line = self.read_reply()?;
        line.strip_prefix(prefix)
            .map(|rest| rest.trim().to_owned())
            .ok_or_else(|| {
                ClientError::Protocol(format!("expected {prefix:?}, got {line:?}"))
            })
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<()> {
        self.send_line("PING")?;
        let line = self.read_reply()?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected PONG, got {line:?}")))
        }
    }

    /// Run one SQL statement.
    pub fn exec(&mut self, sql: &str) -> Result<ExecReply> {
        self.send_line(&format!("EXEC {sql}"))?;
        let line = self.read_reply()?;
        if let Some(rest) = line.strip_prefix("OK CREATED ") {
            return Ok(ExecReply::Created(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK DROPPED ") {
            return Ok(ExecReply::Dropped(rest.to_owned()));
        }
        if let Some(rest) = line.strip_prefix("OK INSERTED ") {
            let n = rest
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad count {rest:?}")))?;
            return Ok(ExecReply::Inserted(n));
        }
        if let Some(rest) = line.strip_prefix("ROWS ") {
            let (count, names) = rest
                .split_once(' ')
                .map(|(c, n)| (c, n.to_owned()))
                .unwrap_or((rest, String::new()));
            let count: usize = count
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad row count in {line:?}")))?;
            let names = decode_names(&names)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let row_line = self.read_line()?;
                rows.push(
                    decode_row(&row_line).map_err(|e| ClientError::Protocol(e.0))?,
                );
            }
            return Ok(ExecReply::Rows { names, rows });
        }
        Err(ClientError::Protocol(format!("unexpected EXEC reply {line:?}")))
    }

    /// Register a continuous query, returning its id.
    pub fn register(&mut self, sql: &str) -> Result<u64> {
        self.send_line(&format!("REGISTER {sql}"))?;
        self.read_query_id()
    }

    /// Register with an explicit execution mode.
    pub fn register_with_mode(&mut self, sql: &str, mode: ExecutionMode) -> Result<u64> {
        let kw = match mode {
            ExecutionMode::Incremental => "INCREMENTAL",
            ExecutionMode::Reevaluate => "REEVAL",
        };
        self.send_line(&format!("REGISTER {kw} {sql}"))?;
        self.read_query_id()
    }

    fn read_query_id(&mut self) -> Result<u64> {
        let rest = self.expect_reply("OK QUERY ")?;
        rest.parse()
            .map_err(|_| ClientError::Protocol(format!("bad query id {rest:?}")))
    }

    /// Deregister a continuous query.
    pub fn deregister(&mut self, id: u64) -> Result<()> {
        self.send_line(&format!("DEREGISTER {id}"))?;
        self.expect_reply("OK DEREGISTERED ").map(|_| ())
    }

    /// Bulk-ingest rows into a stream (the socket-receptor path). Returns
    /// how many rows the basket accepted.
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize> {
        let mut block = format!("PUSH {stream}\n");
        for row in rows {
            block.push_str(&encode_row(row));
            block.push('\n');
        }
        block.push_str(PUSH_END);
        block.push('\n');
        self.stream.write_all(block.as_bytes())?;
        let rest = self.expect_reply("OK PUSHED ")?;
        rest.parse()
            .map_err(|_| ClientError::Protocol(format!("bad push count {rest:?}")))
    }

    /// Read a `<tag> <line-count>` framed multi-line reply body.
    fn read_framed(&mut self, tag: &str) -> Result<String> {
        let rest = self.expect_reply(&format!("{tag} "))?;
        let lines: usize = rest
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad {tag} length {rest:?}")))?;
        let mut out = String::new();
        for _ in 0..lines {
            out.push_str(&self.read_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Full `STATS` report text.
    pub fn stats(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        self.read_framed("STATS")
    }

    /// Extended `STATS DETAIL` report (adds the per-factory analyze table
    /// and the lifecycle-latency percentile summary).
    pub fn stats_detail(&mut self) -> Result<String> {
        self.send_line("STATS DETAIL")?;
        self.read_framed("STATS")
    }

    /// Metrics registry snapshot in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String> {
        self.send_line("METRICS")?;
        self.read_framed("METRICS")
    }

    /// `EXPLAIN ANALYZE <id>`: the query's plan plus its observed-runtime
    /// row (firings, rows, latency percentiles).
    pub fn explain_analyze(&mut self, id: u64) -> Result<String> {
        self.send_line(&format!("EXPLAIN ANALYZE {id}"))?;
        self.read_framed("ANALYZE")
    }

    /// Drain the server's flight recorder (`n` most recent events, or all).
    pub fn trace_dump(&mut self, n: Option<usize>) -> Result<String> {
        match n {
            Some(n) => self.send_line(&format!("TRACE DUMP {n}"))?,
            None => self.send_line("TRACE DUMP")?,
        }
        self.read_framed("TRACE")
    }

    /// Enter streaming mode for `query`. With a limit the server ends the
    /// stream by itself after that many chunks.
    pub fn subscribe(&mut self, query: u64, limit: Option<u64>) -> Result<Subscription<'_>> {
        match limit {
            Some(n) => self.send_line(&format!("SUBSCRIBE {query} LIMIT {n}"))?,
            None => self.send_line(&format!("SUBSCRIBE {query}"))?,
        }
        let rest = self.expect_reply("OK SUBSCRIBED ")?;
        let names = match rest.split_once(' ') {
            Some((_id, names)) => decode_names(names)?,
            None => Vec::new(),
        };
        Ok(Subscription { client: self, names, finished: false })
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send_line("SHUTDOWN")?;
        self.expect_reply("OK SHUTDOWN").map(|_| ())
    }

    /// Close the session politely.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        self.expect_reply("OK BYE").map(|_| ())
    }
}

fn decode_names(csv: &str) -> Result<Vec<String>> {
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    Ok(split_fields(csv)
        .map_err(|e| ClientError::Protocol(e.0))?
        .into_iter()
        .map(|f| f.text)
        .collect())
}

/// An active subscription: the connection is in streaming mode until
/// [`Subscription::stop`] or the server ends the stream (`LIMIT`,
/// deregistration, shutdown).
///
/// Leave streaming mode with [`Subscription::stop`] (or by observing
/// [`Subscription::finished`]) before reusing the [`Client`] for other
/// commands — merely dropping an unfinished subscription leaves the
/// server streaming on this connection, and subsequent commands would
/// read `CHUNK` frames as their replies.
pub struct Subscription<'a> {
    client: &'a mut Client,
    names: Vec<String>,
    finished: bool,
}

impl Subscription<'_> {
    /// Output column names of the subscribed query.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True once the server ended the stream (`OK STOPPED` seen).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Wait up to `timeout` for the next chunk. `Ok(None)` means either
    /// the timeout elapsed or the stream ended — check
    /// [`Subscription::finished`] to tell them apart.
    pub fn next_chunk(&mut self, timeout: Duration) -> Result<Option<Vec<Row>>> {
        if self.finished {
            return Ok(None);
        }
        self.client.stream.set_read_timeout(Some(timeout))?;
        let header = match self.client.reader.poll_line()? {
            ReadLine::Idle => return Ok(None),
            ReadLine::Eof => {
                self.finished = true;
                return Ok(None);
            }
            ReadLine::Overlong => {
                return Err(ClientError::Protocol(
                    "server frame line exceeds 1 MiB".into(),
                ))
            }
            ReadLine::Line(l) => l,
        };
        self.read_frame_body(&header)
    }

    /// Parse one frame starting at `header`, reading its rows (blocking —
    /// the server writes a frame contiguously).
    fn read_frame_body(&mut self, header: &str) -> Result<Option<Vec<Row>>> {
        if header.starts_with("OK STOPPED") {
            self.finished = true;
            return Ok(None);
        }
        let Some(rest) = header.strip_prefix("CHUNK ") else {
            return Err(ClientError::Protocol(format!(
                "expected CHUNK frame, got {header:?}"
            )));
        };
        let count: usize = rest
            .split_whitespace()
            .nth(1)
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad CHUNK header {header:?}")))?;
        let mut rows = Vec::with_capacity(count);
        self.client.stream.set_read_timeout(None)?;
        for _ in 0..count {
            let line = self.client.read_line()?;
            rows.push(decode_row(&line).map_err(|e| ClientError::Protocol(e.0))?);
        }
        Ok(Some(rows))
    }

    /// Leave streaming mode: send `STOP`, drain in-flight chunks, return
    /// them together with the final `(chunks, rows)` totals the server
    /// reported.
    pub fn stop(mut self) -> Result<(Vec<Vec<Row>>, u64, u64)> {
        if self.finished {
            return Ok((Vec::new(), 0, 0));
        }
        self.client.send_line("STOP")?;
        let mut tail = Vec::new();
        let (chunks, rows) = loop {
            self.client.stream.set_read_timeout(None)?;
            let line = self.client.read_line()?;
            if let Some(rest) = line.strip_prefix("OK STOPPED ") {
                self.finished = true;
                let mut it = rest.split_whitespace();
                let chunks = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                let rows = it.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                break (chunks, rows);
            }
            // A CHUNK frame raced with our STOP; keep it.
            if let Some(rows) = self.read_frame_body(&line)? {
                tail.push(rows);
            }
        };
        // Resync: if the server ended the stream on its own (LIMIT,
        // deregistration) in the instant before our STOP arrived, the
        // STOP was answered with an ERR in command mode that is still in
        // flight. A PING round-trip flushes it deterministically.
        self.client.send_line("PING")?;
        loop {
            let line = self.client.read_line()?;
            if line == "PONG" {
                return Ok((tail, chunks, rows));
            }
            if !line.starts_with("ERR ") {
                return Err(ClientError::Protocol(format!(
                    "unexpected line while resyncing after STOP: {line:?}"
                )));
            }
        }
    }
}
