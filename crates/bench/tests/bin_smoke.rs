//! Smoke tests for the ten experiment binaries: each must parse its
//! arguments and complete a tiny (`--events 100`) workload without
//! panicking. This keeps the full paper-sized sweeps out of the test path
//! while still compiling and exercising every binary end to end.

use std::process::Command;

fn run_bin(exe: &str, args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        !out.stdout.is_empty(),
        "{exe} printed nothing — the experiment report is its whole point"
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

macro_rules! smoke {
    ($test:ident, $bin:literal $(, $extra:literal)*) => {
        #[test]
        fn $test() {
            run_bin(env!(concat!("CARGO_BIN_EXE_", $bin)), &["--events", "100" $(, $extra)*]);
        }
    };
}

smoke!(e1_reeval_smoke, "e1_reeval", "--sweep-threshold");
smoke!(e2_incremental_smoke, "e2_incremental", "--no-cache");
smoke!(e3_window_sweep_smoke, "e3_window_sweep");
smoke!(e4_complex_smoke, "e4_complex");
smoke!(e5_hybrid_smoke, "e5_hybrid");
smoke!(e6_multiquery_smoke, "e6_multiquery");
smoke!(e6_overlap_identical_smoke, "e6_multiquery", "--overlap", "identical");
smoke!(e6_overlap_shared_predicate_smoke, "e6_multiquery", "--overlap", "shared-predicate");
smoke!(e6_overlap_disjoint_smoke, "e6_multiquery", "--overlap", "disjoint");
smoke!(e7_linear_road_smoke, "e7_linear_road");
smoke!(e8_baselines_smoke, "e8_baselines");
smoke!(e9_multicore_smoke, "e9_multicore");
smoke!(e10_server_smoke, "e10_server");
smoke!(e11_recovery_smoke, "e11_recovery");
smoke!(e12_degraded_smoke, "e12_degraded");

/// e9 sweeps worker counts and checksums every query's output internally
/// (exiting non-zero on divergence); the smoke run must certify that the
/// parallel executor was deterministic.
#[test]
fn e9_multicore_determinism() {
    let stdout = run_bin(env!("CARGO_BIN_EXE_e9_multicore"), &["--events", "2000"]);
    assert!(
        stdout.contains("determinism: ok"),
        "e9 did not certify cross-worker determinism:\n{stdout}"
    );
}

/// The `--events=N` form must parse identically to the two-token form.
#[test]
fn equals_form_accepted() {
    run_bin(env!("CARGO_BIN_EXE_e1_reeval"), &["--events=64"]);
}

/// `--obs-compare` runs the observability on/off pair and must snapshot
/// both keys — the off point plain, the on point with e2e latency
/// percentiles — so `BENCH_PR8.json` records the overhead acceptance pair.
#[test]
fn e1_obs_compare_snapshots_both_sides() {
    let stdout = run_bin(
        env!("CARGO_BIN_EXE_e1_reeval"),
        &["--events", "200", "--obs-compare"],
    );
    assert!(
        stdout.contains("\"experiment\":\"e1_obs_off\""),
        "missing obs-off snapshot:\n{stdout}"
    );
    assert!(
        stdout.contains("\"experiment\":\"e1_obs_on\""),
        "missing obs-on snapshot:\n{stdout}"
    );
    assert!(
        stdout.contains("\"p95_us\":"),
        "obs-on snapshot must carry latency percentiles:\n{stdout}"
    );
}

/// The e1/e6/e10 snapshot lines now carry end-to-end latency percentiles
/// alongside events/sec.
#[test]
fn e1_snapshot_carries_latency_percentiles() {
    let stdout = run_bin(env!("CARGO_BIN_EXE_e1_reeval"), &["--events", "200"]);
    assert!(
        stdout.contains("\"p50_us\":") && stdout.contains("\"p99_us\":"),
        "e1 snapshot missing latency fields:\n{stdout}"
    );
}

/// Each overlap mix must emit its own snapshot key so the bench snapshot
/// records the sweep under distinct experiment names.
#[test]
fn e6_overlap_snapshot_keys() {
    let stdout = run_bin(
        env!("CARGO_BIN_EXE_e6_multiquery"),
        &["--events", "200", "--overlap=shared-predicate"],
    );
    assert!(
        stdout.contains("\"experiment\":\"e6_overlap_shared_predicate_q16\""),
        "missing overlap snapshot key:\n{stdout}"
    );
}
