//! E6 — "Analysis" pane / multi-query processing (paper §4, Figure 4).
//!
//! "Such parameters can be reported both for individual queries as well as
//! for the complete query network." A core challenge named in the abstract
//! is "multi-query processing": we scale the number of standing queries
//! over one shared stream and report network throughput, per-query firing
//! latency, scheduler fairness — and, since the shared-execution layer,
//! how much work common-subplan factoring saves.
//!
//! `--overlap MIX` picks the query mix:
//! * `identical` — all N queries are the same text: window, WHERE and
//!   GROUP/aggregates all share (best case).
//! * `shared-predicate` — same window + WHERE, different aggregates: the
//!   selection vector is computed once per basic window, aggregates stay
//!   per-query.
//! * `disjoint` — every query has a distinct threshold: nothing shares
//!   beyond the window shape (worst case).
//! * default (no flag) — the historical mix (thresholds cycle over 12
//!   values), kept comparable with earlier PRs.

use datacell_bench::report::{f1, snapshot_latency, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const TUPLES: usize = 60_000;

/// Fused-friendly aggregate menus for the shared-predicate mix.
const AGG_MENU: [&str; 4] = [
    "COUNT(*), AVG(temp)",
    "COUNT(*), SUM(temp)",
    "MIN(ts), MAX(ts)",
    "COUNT(*), SUM(sensor)",
];

fn query_sql(mix: &str, i: usize, window: usize, slide: usize) -> String {
    match mix {
        "identical" => format!(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] \
             WHERE temp > 18.0 GROUP BY sensor"
        ),
        "shared-predicate" => format!(
            "SELECT sensor, {} FROM sensors [ROWS {window} SLIDE {slide}] \
             WHERE temp > 18.0 GROUP BY sensor",
            AGG_MENU[i % AGG_MENU.len()]
        ),
        "disjoint" => format!(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] \
             WHERE temp > {:.2} GROUP BY sensor",
            14.0 + i as f64 * 0.25
        ),
        // Historical default: thresholds cycle over 12 distinct values, so
        // some queries pair up but most differ.
        _ => format!(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] \
             WHERE temp > {:.1} GROUP BY sensor",
            14.0 + (i % 12) as f64
        ),
    }
}

struct RunStats {
    tps: f64,
    busy_us: f64,
    fairness: f64,
    saved: u64,
    /// End-to-end (arrival → result) latency percentiles across the
    /// whole query network, from the engine's e2e histogram.
    e2e: (f64, f64, f64),
}

fn run(tuples: usize, nqueries: usize, mix: &str) -> RunStats {
    let window = datacell_bench::cli::scaled_window(tuples, 2048);
    let slide = (window / 4).max(1);
    let batch = (tuples / 30).clamp(1, 2000);
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let mut qids = Vec::new();
    for i in 0..nqueries {
        let sql = query_sql(mix, i, window, slide);
        qids.push(cell.register_query_with_mode(&sql, ExecutionMode::Incremental).unwrap());
    }
    let mut gen = SensorStream::new(SensorConfig { sensors: 32, ..Default::default() });
    let start = std::time::Instant::now();
    let mut fed = 0usize;
    while fed < tuples {
        cell.push_rows("sensors", &gen.take_rows(batch)).unwrap();
        cell.run_until_idle().unwrap();
        fed += batch;
        for q in &qids {
            let _ = cell.take_results(*q);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cell.stats();
    let firings: Vec<u64> = stats.queries.iter().map(|q| q.firings).collect();
    let fmin = *firings.iter().min().unwrap_or(&0) as f64;
    let fmax = *firings.iter().max().unwrap_or(&1) as f64;
    let fairness = if fmax > 0.0 { fmin / fmax } else { 1.0 };
    let busy_us: f64 = stats
        .queries
        .iter()
        .map(|q| q.busy.as_secs_f64() * 1e6 / q.firings.max(1) as f64)
        .sum::<f64>()
        / stats.queries.len().max(1) as f64;
    let e2e = cell
        .metrics_snapshot()
        .histogram("datacell_e2e_latency_us")
        .map(|h| h.p50_p95_p99())
        .unwrap_or((0.0, 0.0, 0.0));
    RunStats { tps: tuples as f64 / elapsed, busy_us, fairness, saved: stats.shared_hits, e2e }
}

fn main() {
    let tuples = datacell_bench::cli::events(TUPLES);
    let mix = datacell_bench::cli::arg_value("--overlap").unwrap_or_default();
    let mix_label = if mix.is_empty() { "default".to_string() } else { mix.clone() };
    println!(
        "E6: standing-query scaling over one shared stream \
         ({tuples} tuples, overlap mix: {mix_label})\n"
    );
    let mut t = Table::new(&[
        "queries",
        "stream tuples/s",
        "avg us/firing",
        "fairness(min/max firings)",
        "shared evals saved",
        "e2e p95 us",
    ]);
    let mut tps16 = 0.0;
    let mut e2e16 = (0.0, 0.0, 0.0);
    // The overlap sweeps focus on the q16 point the snapshot tracks; the
    // historical default keeps the full scaling curve.
    let counts: &[usize] =
        if mix.is_empty() { &[1, 4, 16, 64, 256] } else { &[1, 16] };
    for &n in counts {
        let r = run(tuples, n, &mix);
        if n == 16 {
            tps16 = r.tps;
            e2e16 = r.e2e;
        }
        t.row(&[
            n.to_string(),
            f1(r.tps),
            f1(r.busy_us),
            format!("{:.2}", r.fairness),
            r.saved.to_string(),
            f1(r.e2e.1),
        ]);
    }
    t.print();
    if mix.is_empty() {
        snapshot_latency("e6_multiquery_q16", tps16, e2e16);
    } else {
        snapshot_latency(&format!("e6_overlap_{}_q16", mix.replace('-', "_")), tps16, e2e16);
    }
    println!(
        "\nshape check: ingest throughput decays roughly as 1/N (every tuple\nfeeds N factories) while per-query firing cost stays flat and the\nround-robin Petri-net scheduler keeps firing counts balanced (≈1.0).\nOverlapping mixes recover throughput: shared subplans evaluate once\nper pass and fan out to every dependent factory."
    );
}
