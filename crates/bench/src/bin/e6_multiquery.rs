//! E6 — "Analysis" pane / multi-query processing (paper §4, Figure 4).
//!
//! "Such parameters can be reported both for individual queries as well as
//! for the complete query network." A core challenge named in the abstract
//! is "multi-query processing": we scale the number of standing queries
//! over one shared stream and report network throughput, per-query firing
//! latency and scheduler fairness.

use datacell_bench::report::{f1, snapshot, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const TUPLES: usize = 60_000;

fn run(tuples: usize, nqueries: usize) -> (f64, f64, f64) {
    let window = datacell_bench::cli::scaled_window(tuples, 2048);
    let slide = (window / 4).max(1);
    let batch = (tuples / 30).clamp(1, 2000);
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let mut qids = Vec::new();
    for i in 0..nqueries {
        // Vary the queries so they are not trivially identical (different
        // selection thresholds), but keep one window shape so the fairness
        // metric (firing-count balance) is meaningful.
        let threshold = 14.0 + (i % 12) as f64;
        let sql = format!(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] \
             WHERE temp > {threshold:.1} GROUP BY sensor"
        );
        qids.push(cell.register_query_with_mode(&sql, ExecutionMode::Incremental).unwrap());
    }
    let mut gen = SensorStream::new(SensorConfig { sensors: 32, ..Default::default() });
    let start = std::time::Instant::now();
    let mut fed = 0usize;
    while fed < tuples {
        cell.push_rows("sensors", &gen.take_rows(batch)).unwrap();
        cell.run_until_idle().unwrap();
        fed += batch;
        for q in &qids {
            let _ = cell.take_results(*q);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cell.stats();
    let firings: Vec<u64> = stats.queries.iter().map(|q| q.firings).collect();
    let fmin = *firings.iter().min().unwrap_or(&0) as f64;
    let fmax = *firings.iter().max().unwrap_or(&1) as f64;
    let fairness = if fmax > 0.0 { fmin / fmax } else { 1.0 };
    let busy_us: f64 = stats
        .queries
        .iter()
        .map(|q| q.busy.as_secs_f64() * 1e6 / q.firings.max(1) as f64)
        .sum::<f64>()
        / stats.queries.len().max(1) as f64;
    (tuples as f64 / elapsed, busy_us, fairness)
}

fn main() {
    let tuples = datacell_bench::cli::events(TUPLES);
    println!("E6: standing-query scaling over one shared stream ({tuples} tuples)\n");
    let mut t = Table::new(&[
        "queries", "stream tuples/s", "avg us/firing", "fairness(min/max firings)",
    ]);
    let mut tps16 = 0.0;
    for n in [1usize, 4, 16, 64, 256] {
        let (tps, lat, fair) = run(tuples, n);
        if n == 16 {
            tps16 = tps;
        }
        t.row(&[n.to_string(), f1(tps), f1(lat), format!("{fair:.2}")]);
    }
    t.print();
    snapshot("e6_multiquery_q16", tps16);
    println!(
        "\nshape check: ingest throughput decays roughly as 1/N (every tuple\nfeeds N factories) while per-query firing cost stays flat and the\nround-robin Petri-net scheduler keeps firing counts balanced (≈1.0)."
    );
}
