//! E12 — Resilience: ingest throughput under injected I/O faults and
//! memory-budget admission control.
//!
//! Six legs over the same durable (fsync=always) windowed-aggregation
//! scenario:
//!
//! 1. **clean** — fault facade disabled: the baseline every other leg is
//!    judged against, and the "facade costs nothing when off" reference;
//! 2. **armed-idle** — facade enabled with a `p=0` plan: every WAL
//!    append/fsync runs the fault check and seeded roll but nothing ever
//!    fires. Budget: within ~2% of clean (the acceptance bar for keeping
//!    the harness compiled in);
//! 3. **fsync faults at 0.1% / 1%** — retryable EIO injected on the
//!    fsync path; throughput shows what the capped-backoff retry loop
//!    costs at realistic and at abusive fault rates. `io_gave_up` must
//!    stay zero (retryable faults never escalate);
//! 4. **degraded** — a non-retryable ENOSPC lands on a stream-segment
//!    append mid-run: the basket drops durability (loudly) and ingest
//!    continues WAL-free — throughput typically *rises* past the fault;
//! 5. **80% / 95% budget occupancy** — a `MemoryBudget` sized so the
//!    steady-state pinned bytes sit at the given fraction of the
//!    ceiling, drop-oldest policy: the cost of running admission checks
//!    hot against the ceiling.

use std::path::PathBuf;
use std::time::Instant;

use datacell_bench::report::{f1, f2, snapshot, Table};
use datacell_core::{
    DataCell, DataCellConfig, FaultPlan, Faults, MemoryBudget, ShedPolicy, SyncPolicy, WalConfig,
};
use datacell_workload::{SensorConfig, SensorStream};

const TOTAL_TUPLES: usize = 100_000;
const BATCH: usize = 64; // small batches → many fsyncs → fault rates bite

const QUERY: &str =
    "SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS 4096 SLIDE 1024] GROUP BY sensor";

fn wal_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("datacell-e12-{}-{tag}", std::process::id()))
}

fn plan(spec: &str) -> Faults {
    Faults::enabled(FaultPlan::parse(spec).expect("e12 fault plan"))
}

struct Outcome {
    tps: f64,
    peak_pinned: usize,
    io_retries: u64,
    io_gave_up: u64,
    degraded_streams: usize,
    shed_chunks: u64,
}

/// Feed `total` sensor tuples through a durable engine under `faults`
/// and (optionally) a memory budget; returns throughput and the
/// resilience counters the legs assert on.
fn run(total: usize, tag: &str, faults: Faults, budget: Option<MemoryBudget>) -> Outcome {
    let dir = wal_dir(tag);
    std::fs::remove_dir_all(&dir).ok();
    let config = DataCellConfig {
        wal: Some(WalConfig { dir: dir.clone(), sync: SyncPolicy::Always, ..WalConfig::at(&dir) }),
        faults,
        memory_budget: budget,
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::open(config).unwrap();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell.register_query(QUERY).unwrap();

    let mut gen = SensorStream::new(SensorConfig::default());
    let mut peak_pinned = 0usize;
    let start = Instant::now();
    let mut fed = 0usize;
    while fed < total {
        let n = BATCH.min(total - fed);
        let rows = gen.take_rows(n);
        // Drop-oldest admission never rejects a push, so the hot loop
        // stays branch-free; the reject/pause policies are covered by
        // the resilience tests, not this throughput harness.
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        peak_pinned = peak_pinned.max(cell.pinned_bytes());
        fed += n;
    }
    let tps = total as f64 / start.elapsed().as_secs_f64();
    let _ = cell.take_results(q);

    let stats = cell.stats();
    let wal = cell.wal_stats().expect("durable engine has wal stats");
    let out = Outcome {
        tps,
        peak_pinned,
        io_retries: wal.io_retries,
        io_gave_up: wal.io_gave_up,
        degraded_streams: stats.degraded_streams,
        shed_chunks: stats.admission_dropped_chunks,
    };
    drop(cell);
    std::fs::remove_dir_all(&dir).ok();
    out
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_TUPLES);
    println!("E12: degraded-mode ingest — fault rates, facade overhead, admission ceilings");
    println!("query: {QUERY}");
    println!("{total} tuples, {BATCH}-row PUSH batches, WAL fsync=always\n");

    let clean = run(total, "clean", Faults::disabled(), None);
    let armed = run(total, "armed", plan("seed=1;wal_fsync:p=0:eio"), None);
    let f01 = run(total, "f01", plan("seed=12;wal_fsync:p=0.001:eio"), None);
    let f1pct = run(total, "f1", plan("seed=12;wal_fsync:p=0.01:eio"), None);
    assert_eq!(f01.io_gave_up, 0, "e12: retryable faults must never exhaust retries");
    assert_eq!(f1pct.io_gave_up, 0, "e12: retryable faults must never exhaust retries");

    // Appends 1..=2 are catalog records (CREATE STREAM + the query
    // registration); call 3 is the first stream-segment append, where a
    // persistent ENOSPC degrades durability instead of erroring — so the
    // whole ingest run measures WAL-detached (degraded) throughput.
    let degraded = run(total, "degraded", plan("seed=3;wal_append:nth=3:enospc"), None);
    assert_eq!(degraded.degraded_streams, 1, "e12: ENOSPC on a segment append must degrade");
    assert!(degraded.io_gave_up >= 1);

    // Size the ceiling so steady-state usage sits at ~80% / ~95% of it;
    // drop-oldest keeps pushes always admitted while the admission check
    // (a pinned-bytes sweep per push) runs hot against the ceiling.
    let pinned = clean.peak_pinned.max(1);
    let b80 = run(
        total,
        "b80",
        Faults::disabled(),
        Some(MemoryBudget::pinned_bytes(pinned * 5 / 4, ShedPolicy::DropOldest)),
    );
    let b95 = run(
        total,
        "b95",
        Faults::disabled(),
        Some(MemoryBudget::pinned_bytes(pinned * 20 / 19, ShedPolicy::DropOldest)),
    );

    let mut t = Table::new(&["leg", "tuples/s", "vs clean", "retries", "gave up", "shed"]);
    let vs = |tps: f64| format!("{:+.1}%", (tps / clean.tps - 1.0) * 100.0);
    for (name, o) in [
        ("clean", &clean),
        ("facade armed, idle", &armed),
        ("fsync eio p=0.1%", &f01),
        ("fsync eio p=1%", &f1pct),
        ("enospc degrade", &degraded),
        ("budget 80% occupancy", &b80),
        ("budget 95% occupancy", &b95),
    ] {
        t.row(&[
            name.into(),
            f1(o.tps),
            if std::ptr::eq(o, &clean) { "-".into() } else { vs(o.tps) },
            o.io_retries.to_string(),
            o.io_gave_up.to_string(),
            o.shed_chunks.to_string(),
        ]);
    }
    t.print();
    println!("\npeak pinned: {} bytes (sets the 80%/95% ceilings)", clean.peak_pinned);

    snapshot("e12_ingest_clean", clean.tps);
    snapshot("e12_facade_armed_idle", armed.tps);
    snapshot("e12_fsync_fault_0p1pct", f01.tps);
    snapshot("e12_fsync_fault_1pct", f1pct.tps);
    snapshot("e12_enospc_degraded", degraded.tps);
    snapshot("e12_budget_80pct", b80.tps);
    snapshot("e12_budget_95pct", b95.tps);

    let facade_overhead = (1.0 - armed.tps / clean.tps.max(1.0)) * 100.0;
    println!(
        "\nfacade overhead (armed-idle vs disabled): {}%\n\
         budget: the fault facade must stay within ~2% of the disabled\n\
         engine — when off it is a single branch on an Option; armed but\n\
         idle it adds one seeded roll per WAL syscall.\n\
         shape check: retry legs pay ~1ms backoff per absorbed fault;\n\
         the degraded leg sheds durability mid-run and speeds up;\n\
         admission legs pay one pinned-bytes sweep per push.",
        f2(facade_overhead)
    );
}
