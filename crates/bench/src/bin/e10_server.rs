//! E10 — end-to-end client/server throughput over loopback TCP.
//!
//! The whole outside-world loop of the paper's Figure 1, but over real
//! sockets: N concurrent ingest clients batch tuples through the `PUSH`
//! socket receptor while subscriber connections act as emitters,
//! streaming `CHUNK` frames back. The run ends when every subscriber has
//! observed every pushed tuple, so the reported rate is true end-to-end:
//! wire-in → basket → factory firing → wire-out.
//!
//! Default leg: the classic aggregate loop (`COUNT(*), SUM(v)`), swept
//! over the ingest batch size (the wire-side analogue of e1's arrival
//! batch sweep).
//!
//! `--wire-compare`: a row-passthrough query (`SELECT id, v FROM s`) so
//! *both* directions carry every tuple, run once over the CSV text
//! protocol and once over the binary columnar protocol (`HELLO BINARY`),
//! reporting the speedup of length-prefixed columnar frames over
//! per-line CSV.
//!
//! `--subscribers N` (with `--binary`): fan-out — N concurrent
//! subscribers to one passthrough query. The reactor encodes each chunk
//! once and shares the frame across all N write queues; the encode-once
//! cache hit rate is reported alongside throughput.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use datacell_bench::report::{f1, snapshot, snapshot_latency, Table};
use datacell_server::{Client, ReconnectPolicy, ResumingSubscription, Server, ServerConfig};
use datacell_storage::{Row, Value};

const TOTAL_EVENTS: usize = 200_000;
const PUSHERS: usize = 4;

/// What the subscribers count while draining.
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// `SELECT COUNT(*), SUM(v)` — sum the delivered counts.
    Aggregate,
    /// `SELECT id, v FROM s` — every pushed row comes back.
    Passthrough,
}

impl Workload {
    fn query(self) -> &'static str {
        match self {
            Workload::Aggregate => "SELECT COUNT(*), SUM(v) FROM s",
            Workload::Passthrough => "SELECT id, v FROM s",
        }
    }
}

struct RunResult {
    events_per_sec: f64,
    chunks: u64,
    wire: (f64, f64, f64),
    cache_hit_rate: f64,
}

/// One full client/server run; every one of `subscribers` connections
/// must observe all `total` events end to end.
fn run(total: usize, batch: usize, load: Workload, binary: bool, subscribers: usize) -> RunResult {
    let mut config = ServerConfig {
        init_script: Some("CREATE STREAM s (id BIGINT, v BIGINT)".into()),
        ..Default::default()
    };
    // The run asserts exactly-once delivery, which is incompatible with
    // the default drop-oldest bounded subscriber queue: if a subscriber
    // falls behind on a loaded box, chunks would be silently dropped and
    // the assertion would flake. Unbounded is safe here — every
    // subscriber drains continuously.
    config.engine.emitter_capacity = None;
    let server = Server::start(config).expect("server start");
    let addr = server.local_addr();

    let mut control = Client::connect(addr).expect("control connect");
    let q = control.register(load.query()).expect("register");

    // Attach every subscriber before the first push (construction does
    // the SUBSCRIBE handshake synchronously), then drain in threads.
    let expected: i64 = ((total / PUSHERS) * PUSHERS) as i64;
    let subs: Vec<ResumingSubscription> = (0..subscribers)
        .map(|_| {
            let connect = if binary {
                ResumingSubscription::connect_binary_with
            } else {
                ResumingSubscription::connect_with
            };
            connect(addr.to_string(), q, ReconnectPolicy::default()).expect("subscribe")
        })
        .collect();
    let drainers: Vec<_> = subs
        .into_iter()
        .map(|mut sub| {
            std::thread::spawn(move || {
                let mut seen = 0i64;
                let mut chunks = 0u64;
                let deadline = Instant::now() + Duration::from_secs(240);
                while seen < expected {
                    assert!(
                        Instant::now() < deadline,
                        "subscriber saw only {seen} of {expected} events"
                    );
                    let Some(rows) =
                        sub.next_chunk(Duration::from_millis(100)).expect("chunk")
                    else {
                        continue;
                    };
                    chunks += 1;
                    match load {
                        Workload::Aggregate => {
                            for row in &rows {
                                seen += row[0].as_int().expect("count column");
                            }
                        }
                        Workload::Passthrough => seen += rows.len() as i64,
                    }
                }
                assert_eq!(seen, expected, "events lost or duplicated end to end");
                chunks
            })
        })
        .collect();

    // Connect and negotiate outside the timed region (both modes alike):
    // the measurement is wire throughput, not TCP/HELLO handshake cost —
    // which would otherwise dominate short runs. The clock starts at the
    // barrier, once every pusher holds a ready connection.
    let per_pusher = total / PUSHERS;
    let gate = Arc::new(Barrier::new(PUSHERS + 1));
    let pushers: Vec<_> = (0..PUSHERS)
        .map(|p| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut client = if binary {
                    let mut c = Client::connect_binary(addr).expect("pusher connect");
                    // Prefetch the schema: the SCHEMA round trip is a
                    // one-time negotiation cost, not wire throughput.
                    c.schema_of("s").expect("schema prefetch");
                    c
                } else {
                    Client::connect(addr).expect("pusher connect")
                };
                gate.wait();
                let mut sent = 0usize;
                while sent < per_pusher {
                    let n = batch.min(per_pusher - sent);
                    let rows: Vec<Row> = (0..n)
                        .map(|i| {
                            let id = (p * per_pusher + sent + i) as i64;
                            vec![Value::Int(id), Value::Int(id % 97)]
                        })
                        .collect();
                    let accepted = client.push_rows("s", &rows).expect("push");
                    assert_eq!(accepted, n, "basket rejected rows");
                    sent += n;
                }
                sent
            })
        })
        .collect();
    gate.wait();
    let start = Instant::now();

    let mut chunks = 0u64;
    for d in drainers {
        chunks = chunks.max(d.join().expect("subscriber thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    for p in pushers {
        p.join().expect("pusher thread");
    }
    // Arrival tick → CHUNK frame on the socket: the true end-to-end
    // latency of the wire loop, from the engine's delivery histogram —
    // plus the reactor's encode-once cache counters in binary mode.
    let (wire, cache_hit_rate) = server.with_engine(|e| {
        let snap = e.metrics_snapshot();
        let wire = snap
            .histogram("datacell_wire_delivery_us")
            .map(|h| h.p50_p95_p99())
            .unwrap_or((0.0, 0.0, 0.0));
        let hits = snap.counter("datacell_reactor_frame_cache_hits_total").unwrap_or(0) as f64;
        let misses =
            snap.counter("datacell_reactor_frame_cache_misses_total").unwrap_or(0) as f64;
        let rate = if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 };
        (wire, rate)
    });
    server.shutdown();
    RunResult {
        events_per_sec: (expected as f64) / elapsed,
        chunks,
        wire,
        cache_hit_rate,
    }
}

/// The classic aggregate batch sweep (the PR-trajectory snapshot).
fn main_aggregate(total: usize) {
    println!(
        "E10: client/server loop over loopback TCP — {PUSHERS} ingest clients + \
         1 subscriber, {total} events end to end\n"
    );
    let mut t =
        Table::new(&["batch", "events/s", "chunks", "events/chunk", "wire p50", "wire p95"]);
    let mut snap = 0.0f64;
    let mut snap_wire = (0.0, 0.0, 0.0);
    for batch in [64usize, 256, 1024] {
        let batch = batch.min(total.max(1));
        let r = run(total, batch, Workload::Aggregate, false, 1);
        t.row(&[
            batch.to_string(),
            f1(r.events_per_sec),
            r.chunks.to_string(),
            f1(total as f64 / r.chunks.max(1) as f64),
            f1(r.wire.0),
            f1(r.wire.1),
        ]);
        if r.events_per_sec > snap {
            snap = r.events_per_sec;
            snap_wire = r.wire;
        }
    }
    t.print();
    println!(
        "\nshape check: bigger PUSH batches amortize wire framing and engine\n\
         locking, so events/sec rises with batch size until the columnar\n\
         kernel dominates; every event is delivered exactly once end to end."
    );
    snapshot_latency("e10_server", snap, snap_wire);
}

/// Text vs binary over a row-passthrough query: every tuple crosses the
/// wire twice (CSV lines vs columnar frames).
fn main_wire_compare(total: usize, batch: usize) {
    println!(
        "E10 --wire-compare: row passthrough over loopback TCP, {total} events,\n\
         batch {batch} — CSV text protocol vs binary columnar frames\n"
    );
    let text = run(total, batch, Workload::Passthrough, false, 1);
    let bin = run(total, batch, Workload::Passthrough, true, 1);
    let mut t = Table::new(&["mode", "events/s", "chunks", "wire p50", "wire p95"]);
    t.row(&[
        "text".into(),
        f1(text.events_per_sec),
        text.chunks.to_string(),
        f1(text.wire.0),
        f1(text.wire.1),
    ]);
    t.row(&[
        "binary".into(),
        f1(bin.events_per_sec),
        bin.chunks.to_string(),
        f1(bin.wire.0),
        f1(bin.wire.1),
    ]);
    t.print();
    let speedup = bin.events_per_sec / text.events_per_sec.max(1.0);
    println!(
        "\nbinary/text speedup: {speedup:.2}x — length-prefixed columnar frames\n\
         skip per-byte newline scanning, per-row CSV formatting/parsing and\n\
         per-subscriber re-encoding (frames are encoded once and shared)."
    );
    snapshot_latency("e10_wire_text", text.events_per_sec, text.wire);
    snapshot_latency("e10_wire_binary", bin.events_per_sec, bin.wire);
    snapshot("e10_wire_speedup", speedup);
}

/// Fan-out: N subscribers to one passthrough query; the encode-once
/// cache turns N deliveries of a chunk into one encoding.
fn main_fanout(total: usize, subscribers: usize, binary: bool) {
    let mode = if binary { "binary" } else { "text" };
    println!(
        "E10 --subscribers {subscribers}: {mode}-mode fan-out over loopback TCP,\n\
         {total} events delivered to every subscriber\n"
    );
    let r = run(total, 256, Workload::Passthrough, binary, subscribers);
    let delivered = r.events_per_sec * subscribers as f64;
    let mut t = Table::new(&["subscribers", "events/s", "deliveries/s", "cache hit %"]);
    t.row(&[
        subscribers.to_string(),
        f1(r.events_per_sec),
        f1(delivered),
        f1(r.cache_hit_rate * 100.0),
    ]);
    t.print();
    println!(
        "\nshape check: with {subscribers} subscribers the reactor encodes each\n\
         chunk once ({:.1}% cache hits) and fans the same bytes out to every\n\
         write queue — deliveries/sec scales while encodings stay flat.",
        r.cache_hit_rate * 100.0
    );
    snapshot(&format!("e10_fanout{subscribers}_{mode}"), delivered);
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_EVENTS);
    let binary = datacell_bench::cli::has_flag("--binary");
    let subscribers: usize = datacell_bench::cli::arg_value("--subscribers")
        .map(|v| v.parse().expect("--subscribers takes a count"))
        .unwrap_or(1);
    if datacell_bench::cli::has_flag("--wire-compare") {
        // Batch 1024: large enough that the wire format (CSV lines vs
        // columnar frames) dominates over per-batch ack round trips —
        // the quantity this leg is comparing.
        main_wire_compare(total, 1024);
    } else if subscribers > 1 {
        main_fanout(total, subscribers, binary);
    } else if binary {
        // Binary-mode aggregate loop (same shape as the default leg).
        let r = run(total, 256, Workload::Aggregate, true, 1);
        println!("E10 --binary: aggregate loop over binary frames");
        snapshot_latency("e10_server_binary", r.events_per_sec, r.wire);
    } else {
        main_aggregate(total);
    }
}
