//! E10 — end-to-end client/server throughput over loopback TCP.
//!
//! The whole outside-world loop of the paper's Figure 1, but over real
//! sockets: N concurrent ingest clients batch tuples through the `PUSH`
//! socket receptor while one subscriber connection acts as the emitter,
//! streaming `CHUNK` frames back. The run ends when the subscriber has
//! observed every pushed tuple in the aggregated results (sum of
//! per-firing `COUNT(*)` equals the events fed), so the reported rate is
//! true end-to-end: wire-in → basket → factory firing → wire-out.
//!
//! We sweep the ingest batch size (the wire-side analogue of e1's arrival
//! batch sweep) and report events/sec plus the chunk counts.

use std::time::{Duration, Instant};

use datacell_bench::report::{f1, snapshot_latency, Table};
use datacell_server::{Client, Server, ServerConfig};
use datacell_storage::{Row, Value};

const TOTAL_EVENTS: usize = 200_000;
const PUSHERS: usize = 4;

/// One full client/server run; returns (events/sec, chunks received,
/// wire-delivery latency percentiles).
fn run(total: usize, batch: usize) -> (f64, u64, (f64, f64, f64)) {
    let mut config = ServerConfig {
        init_script: Some("CREATE STREAM s (id BIGINT, v BIGINT)".into()),
        ..Default::default()
    };
    // The run asserts exactly-once delivery, which is incompatible with
    // the default drop-oldest bounded subscriber queue: if the subscriber
    // session falls behind on a loaded box, chunks would be silently
    // dropped and the assertion would flake. Unbounded is safe here — the
    // subscriber drains continuously.
    config.engine.emitter_capacity = None;
    let server = Server::start(config).expect("server start");
    let addr = server.local_addr();

    let mut control = Client::connect(addr).expect("control connect");
    let q = control.register("SELECT COUNT(*), SUM(v) FROM s").expect("register");
    let mut sub = control.subscribe(q, None).expect("subscribe");

    let per_pusher = total / PUSHERS;
    let start = Instant::now();
    let pushers: Vec<_> = (0..PUSHERS)
        .map(|p| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("pusher connect");
                let mut sent = 0usize;
                while sent < per_pusher {
                    let n = batch.min(per_pusher - sent);
                    let rows: Vec<Row> = (0..n)
                        .map(|i| {
                            let id = (p * per_pusher + sent + i) as i64;
                            vec![Value::Int(id), Value::Int(id % 97)]
                        })
                        .collect();
                    let accepted = client.push_rows("s", &rows).expect("push");
                    assert_eq!(accepted, n, "basket rejected rows");
                    sent += n;
                }
                sent
            })
        })
        .collect();

    // Drain the subscription until every pushed tuple is accounted for.
    let expected: i64 = (per_pusher * PUSHERS) as i64;
    let mut seen = 0i64;
    let mut chunks = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while seen < expected {
        assert!(
            Instant::now() < deadline,
            "subscriber saw only {seen} of {expected} events"
        );
        if let Some(rows) = sub.next_chunk(Duration::from_millis(100)).expect("chunk") {
            chunks += 1;
            for row in rows {
                seen += row[0].as_int().expect("count column");
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(seen, expected, "events lost or duplicated end to end");
    for p in pushers {
        p.join().expect("pusher thread");
    }
    drop(sub.stop());
    // Arrival tick → CHUNK frame on the socket: the true end-to-end
    // latency of the wire loop, from the engine's delivery histogram.
    let wire = server.with_engine(|e| {
        e.metrics_snapshot()
            .histogram("datacell_wire_delivery_us")
            .map(|h| h.p50_p95_p99())
            .unwrap_or((0.0, 0.0, 0.0))
    });
    server.shutdown();
    ((expected as f64) / elapsed, chunks, wire)
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_EVENTS);
    println!(
        "E10: client/server loop over loopback TCP — {PUSHERS} ingest clients + \
         1 subscriber, {total} events end to end\n"
    );
    let mut t =
        Table::new(&["batch", "events/s", "chunks", "events/chunk", "wire p50", "wire p95"]);
    let mut snap = 0.0f64;
    let mut snap_wire = (0.0, 0.0, 0.0);
    for batch in [64usize, 256, 1024] {
        let batch = batch.min(total.max(1));
        let (eps, chunks, wire) = run(total, batch);
        t.row(&[
            batch.to_string(),
            f1(eps),
            chunks.to_string(),
            f1(total as f64 / chunks.max(1) as f64),
            f1(wire.0),
            f1(wire.1),
        ]);
        if eps > snap {
            snap = eps;
            snap_wire = wire;
        }
    }
    t.print();
    println!(
        "\nshape check: bigger PUSH batches amortize wire framing and engine\n\
         locking, so events/sec rises with batch size until the columnar\n\
         kernel dominates; every event is delivered exactly once end to end."
    );
    snapshot_latency("e10_server", snap, snap_wire);
}
