//! E2 — "Sliding Window Processing" (paper §4).
//!
//! Incremental vs. full re-evaluation for sliding-window aggregation. The
//! audience of the demo compares "the two execution modes both in terms of
//! elapsed time and in terms of investigating where the benefits of
//! incremental processing come from": we report per-slide time *and* the
//! tuples touched per slide (the intermediate volume incremental mode
//! shrinks). `--no-cache` disables partial caching (ablation A1).

use datacell_bench::report::{f1, Table};
use datacell_core::{DataCell, DataCellConfig, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const SLIDES_MEASURED: usize = 24;

/// Run a sliding SUM/AVG window of `size` with step `slide`; return
/// (median us per slide, tuples touched per slide).
fn run(size: usize, slide: usize, mode: ExecutionMode, cache: bool) -> (f64, u64) {
    let mut cell = DataCell::new(DataCellConfig { cache_partials: cache, ..Default::default() });
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let sql = format!(
        "SELECT COUNT(*), SUM(temp), AVG(temp), MIN(temp), MAX(temp) \
         FROM sensors [ROWS {size} SLIDE {slide}]"
    );
    let q = cell.register_query_with_mode(&sql, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());

    // Fill the first window.
    cell.push_rows("sensors", &gen.take_rows(size)).unwrap();
    cell.run_until_idle().unwrap();
    let _ = cell.take_results(q);

    // Measure steady-state slides.
    let mut samples = Vec::with_capacity(SLIDES_MEASURED);
    let mut touched = 0u64;
    for _ in 0..SLIDES_MEASURED {
        let rows = gen.take_rows(slide);
        cell.push_rows("sensors", &rows).unwrap();
        let start = std::time::Instant::now();
        cell.run_until_idle().unwrap();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        touched = cell.stats().queries[0].last_tuples_touched;
        let _ = cell.take_results(q);
    }
    (datacell_bench::median_micros(samples), touched)
}

fn main() {
    let events = datacell_bench::cli::events(262_144);
    let no_cache = datacell_bench::cli::has_flag("--no-cache");

    println!("E2: sliding-window aggregation, incremental vs full re-evaluation");
    println!("query: COUNT/SUM/AVG/MIN/MAX over [ROWS w SLIDE w/16]\n");

    let mut t = Table::new(&[
        "window", "slide", "reeval us/slide", "incr us/slide", "speedup",
        "reeval touched", "incr touched",
    ]);
    for size in datacell_bench::cli::scaled_windows(events, &[1024, 4096, 16_384, 65_536, 262_144]) {
        let slide = (size / 16).max(1);
        let (re_us, re_touched) = run(size, slide, ExecutionMode::Reevaluate, true);
        let (inc_us, inc_touched) = run(size, slide, ExecutionMode::Incremental, true);
        t.row(&[
            size.to_string(),
            slide.to_string(),
            f1(re_us),
            f1(inc_us),
            format!("{:.1}x", re_us / inc_us.max(0.001)),
            re_touched.to_string(),
            inc_touched.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nshape check: re-evaluation touches the whole window (w tuples) per\nslide; incremental touches only the new basic window (w/16) plus n=16\ncached partials — per-slide cost tracks the slide, speedup ≈ w/s.\n"
    );

    if no_cache {
        println!("A1: incremental with partial caching disabled (recompute every basic window)");
        let mut t = Table::new(&["window", "incr cached us", "incr no-cache us", "touched no-cache"]);
        for size in datacell_bench::cli::scaled_windows(events, &[4096, 16_384, 65_536]) {
            let slide = (size / 16).max(1);
            let (cached_us, _) = run(size, slide, ExecutionMode::Incremental, true);
            let (nocache_us, touched) = run(size, slide, ExecutionMode::Incremental, false);
            t.row(&[
                size.to_string(),
                f1(cached_us),
                f1(nocache_us),
                touched.to_string(),
            ]);
        }
        t.print();
        println!("\nshape check: without cached partials every slide recomputes all\nbasic windows (touches ≈ w again) — caching is where the benefit lives.");
    }
}
