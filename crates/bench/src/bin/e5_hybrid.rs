//! E5 — "Two Query Paradigms" (paper §3).
//!
//! "One important merit of the DataCell architecture is the natural
//! integration of baskets and tables within the same processing fabric…
//! a single factory can interact both with tables and baskets."
//!
//! One engine instance concurrently serves (a) a continuous stream⋈table
//! query, (b) one-time analytical queries over the same table, and (c)
//! one-time inspection queries over the live basket. We report the cost of
//! each and show that the hybrid factory adds only the join cost over the
//! pure-stream factory.

use datacell_bench::report::{f1, Table};
use datacell_core::{DataCell, ExecOutcome, ExecutionMode};
use datacell_storage::Value;
use datacell_workload::{SensorConfig, SensorStream};

const FULL_WINDOW: usize = 8192;
const SLIDES_MEASURED: usize = 12;

fn main() {
    let events = datacell_bench::cli::events(FULL_WINDOW * 2);
    let window = datacell_bench::cli::scaled_window(events, FULL_WINDOW);
    let slide = (window / 16).max(1);
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    cell.execute("CREATE TABLE dim (sensor BIGINT, zone BIGINT)").unwrap();
    let values: Vec<String> =
        (0..100).map(|i| format!("({}, {})", i, i % 8)).collect();
    cell.execute(&format!("INSERT INTO dim VALUES {}", values.join(", "))).unwrap();

    // Identical aggregation shape so the difference between the two
    // factories is exactly the dimension-table probe.
    let pure = cell
        .register_query_with_mode(
            &format!("SELECT sensor, AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] GROUP BY sensor"),
            ExecutionMode::Incremental,
        )
        .unwrap();
    let hybrid = cell
        .register_query_with_mode(
            &format!(
                "SELECT sensors.sensor, AVG(sensors.temp), MAX(dim.zone) \
                 FROM sensors [ROWS {window} SLIDE {slide}] \
                 JOIN dim ON sensors.sensor = dim.sensor GROUP BY sensors.sensor"
            ),
            ExecutionMode::Incremental,
        )
        .unwrap();

    let mut gen = SensorStream::new(SensorConfig { sensors: 100, ..Default::default() });
    cell.push_rows("sensors", &gen.take_rows(window)).unwrap();
    cell.run_until_idle().unwrap();

    // Steady-state continuous work + interleaved one-time queries.
    let mut slide_us = Vec::new();
    let mut onetime_table_us = Vec::new();
    let mut onetime_basket_us = Vec::new();
    for i in 0..SLIDES_MEASURED {
        cell.push_rows("sensors", &gen.take_rows(slide)).unwrap();
        let start = std::time::Instant::now();
        cell.run_until_idle().unwrap();
        slide_us.push(start.elapsed().as_secs_f64() * 1e6);

        // One-time query over the persistent table.
        let (out, us) = datacell_bench::time_once(|| {
            cell.execute("SELECT zone, COUNT(*) FROM dim GROUP BY zone ORDER BY zone")
                .unwrap()
        });
        onetime_table_us.push(us);
        if i == 0 {
            if let ExecOutcome::Rows { chunk, .. } = out {
                assert_eq!(chunk.len(), 8);
            }
        }
        // One-time inspection of the live basket (non-consuming).
        let (_, us) = datacell_bench::time_once(|| {
            cell.execute("SELECT COUNT(*), MAX(temp) FROM sensors").unwrap()
        });
        onetime_basket_us.push(us);
        let _ = cell.take_results(pure);
        let _ = cell.take_results(hybrid);
    }

    // Attribution: per-factory busy time.
    let stats = cell.stats();
    let busy = |qid: u64| {
        stats
            .queries
            .iter()
            .find(|q| q.id == qid)
            .map(|q| q.busy.as_secs_f64() * 1e6 / q.firings.max(1) as f64)
            .unwrap_or(0.0)
    };

    println!("E5: hybrid processing — one engine, streams + tables + one-time queries\n");
    let mut t = Table::new(&["measure", "us (median or per firing)"]);
    t.row(&["network slide (both factories)".into(), f1(datacell_bench::median_micros(slide_us))]);
    t.row(&["  pure-stream factory, per firing".into(), f1(busy(pure))]);
    t.row(&["  hybrid (join dim) factory, per firing".into(), f1(busy(hybrid))]);
    t.row(&[
        "one-time query over table, while streaming".into(),
        f1(datacell_bench::median_micros(onetime_table_us)),
    ]);
    t.row(&[
        "one-time query over live basket".into(),
        f1(datacell_bench::median_micros(onetime_basket_us)),
    ]);
    t.print();

    // Sanity: dim mutation is visible to the factory (version-cached snapshot).
    cell.execute("INSERT INTO dim VALUES (100, 7)").unwrap();
    cell.push_rows(
        "sensors",
        &[vec![Value::Timestamp(0), Value::Int(100), Value::Float(30.0)]],
    )
    .unwrap();
    println!(
        "\nshape check: the hybrid factory costs only the probe of the dimension\ntable more than the pure-stream factory; one-time queries run unimpeded\non the same engine — no second system needed (the paper's core merit)."
    );
}
