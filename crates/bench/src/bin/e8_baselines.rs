//! E8 — architectural baselines (paper §2).
//!
//! Two comparisons on the *same* queries and data:
//!
//! 1. **bulk columnar vs tuple-at-a-time volcano**: DataCell against the
//!    Volcano comparator engine (same binder, same plans, row-by-row
//!    interpretation) — "bulk processing instead of volcano and vectorized
//!    query processing as opposed to tuple-based".
//! 2. **continuous vs store-first-query-later**: DataCell against the
//!    traditional insert-then-requery DBMS pattern, whose latency grows
//!    with the stored history.

use datacell_baseline::{StoreFirstEngine, VolcanoEngine};
use datacell_bench::report::{f1, f2, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const TUPLES: usize = 120_000;
const BATCH: usize = 4000;
const QUERY: &str = "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) \
                     FROM sensors [ROWS 8192 SLIDE 2048] WHERE temp > 16.0 GROUP BY sensor";

fn feed(gen: &mut SensorStream) -> Vec<Vec<datacell_storage::Value>> {
    gen.take_rows(BATCH)
}

fn run_datacell(mode: ExecutionMode) -> f64 {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell.register_query_with_mode(QUERY, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());
    let start = std::time::Instant::now();
    let mut fed = 0;
    while fed < TUPLES {
        let rows = feed(&mut gen);
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        let _ = cell.take_results(q);
        fed += BATCH;
    }
    TUPLES as f64 / start.elapsed().as_secs_f64()
}

fn run_volcano() -> f64 {
    let mut engine = VolcanoEngine::new();
    engine.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = engine.register_query(QUERY).unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());
    let start = std::time::Instant::now();
    let mut fed = 0;
    while fed < TUPLES {
        let rows = feed(&mut gen);
        engine.push_rows("sensors", &rows).unwrap();
        engine.run_until_idle().unwrap();
        let _ = engine.take_results(q);
        fed += BATCH;
    }
    TUPLES as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("E8a: execution model — {TUPLES} tuples, sliding grouped aggregate\nquery: {QUERY}\n");
    let mut t = Table::new(&["engine", "tuples/s", "vs volcano"]);
    let volcano = run_volcano();
    let reeval = run_datacell(ExecutionMode::Reevaluate);
    let incr = run_datacell(ExecutionMode::Incremental);
    t.row(&["volcano tuple-at-a-time".into(), f1(volcano), "1.0x".into()]);
    t.row(&[
        "DataCell bulk (re-evaluation)".into(),
        f1(reeval),
        format!("{:.1}x", reeval / volcano),
    ]);
    t.row(&[
        "DataCell bulk (incremental)".into(),
        f1(incr),
        format!("{:.1}x", incr / volcano),
    ]);
    t.print();

    println!("\nE8b: store-first-query-later — per-batch answer latency as history grows");
    let mut store = StoreFirstEngine::new();
    store.create_table("CREATE STREAM sensors (ts TIMESTAMP, sensor BIGINT, temp DOUBLE)")
        .unwrap();
    let sq = store
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) FROM sensors \
             WHERE temp > 16.0 GROUP BY sensor",
        )
        .unwrap();
    // DataCell equivalent: unwindowed continuous query (consume-once).
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let cq = cell
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) FROM sensors \
             WHERE temp > 16.0 GROUP BY sensor",
        )
        .unwrap();

    let mut gen_a = SensorStream::new(SensorConfig::default());
    let mut gen_b = SensorStream::new(SensorConfig::default());
    let mut t = Table::new(&[
        "stored rows", "store-first us/batch", "DataCell us/batch", "ratio",
    ]);
    let mut stored = 0usize;
    for step in 1..=10 {
        let rows_a = gen_a.take_rows(BATCH);
        let rows_b = gen_b.take_rows(BATCH);
        stored += BATCH;
        store.push_rows("sensors", &rows_a).unwrap();
        let (_, sf_us) = datacell_bench::time_once(|| store.evaluate(sq).unwrap());
        cell.push_rows("sensors", &rows_b).unwrap();
        let (_, dc_us) = datacell_bench::time_once(|| {
            cell.run_until_idle().unwrap();
            cell.take_results(cq).unwrap()
        });
        if step % 2 == 0 {
            t.row(&[
                stored.to_string(),
                f1(sf_us),
                f1(dc_us),
                f2(sf_us / dc_us.max(0.001)),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: columnar bulk processing beats the interpreted volcano\nmodel by an order of magnitude at equal plans; store-first latency grows\nlinearly with history while the continuous engine stays flat."
    );
}
