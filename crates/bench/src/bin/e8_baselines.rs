//! E8 — architectural baselines (paper §2).
//!
//! Two comparisons on the *same* queries and data:
//!
//! 1. **bulk columnar vs tuple-at-a-time volcano**: DataCell against the
//!    Volcano comparator engine (same binder, same plans, row-by-row
//!    interpretation) — "bulk processing instead of volcano and vectorized
//!    query processing as opposed to tuple-based".
//! 2. **continuous vs store-first-query-later**: DataCell against the
//!    traditional insert-then-requery DBMS pattern, whose latency grows
//!    with the stored history.

use datacell_baseline::{StoreFirstEngine, VolcanoEngine};
use datacell_bench::report::{f1, f2, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const TUPLES: usize = 120_000;

/// Workload scaled by `--events`: tuple budget, batch size, windowed query.
struct Load {
    tuples: usize,
    batch: usize,
    query: String,
}

impl Load {
    fn from_args() -> Self {
        let tuples = datacell_bench::cli::events(TUPLES);
        let batch = (tuples / 30).clamp(1, 4000);
        let window = datacell_bench::cli::scaled_window(tuples, 8192);
        let slide = (window / 4).max(1);
        let query = format!(
            "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) \
             FROM sensors [ROWS {window} SLIDE {slide}] WHERE temp > 16.0 GROUP BY sensor"
        );
        Load { tuples, batch, query }
    }
}

fn run_datacell(load: &Load, mode: ExecutionMode) -> f64 {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell.register_query_with_mode(&load.query, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());
    let start = std::time::Instant::now();
    let mut fed = 0;
    while fed < load.tuples {
        let rows = gen.take_rows(load.batch);
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        let _ = cell.take_results(q);
        fed += load.batch;
    }
    load.tuples as f64 / start.elapsed().as_secs_f64()
}

fn run_volcano(load: &Load) -> f64 {
    let mut engine = VolcanoEngine::new();
    engine.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = engine.register_query(&load.query).unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());
    let start = std::time::Instant::now();
    let mut fed = 0;
    while fed < load.tuples {
        let rows = gen.take_rows(load.batch);
        engine.push_rows("sensors", &rows).unwrap();
        engine.run_until_idle().unwrap();
        let _ = engine.take_results(q);
        fed += load.batch;
    }
    load.tuples as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let load = Load::from_args();
    println!(
        "E8a: execution model — {} tuples, sliding grouped aggregate\nquery: {}\n",
        load.tuples, load.query
    );
    let mut t = Table::new(&["engine", "tuples/s", "vs volcano"]);
    let volcano = run_volcano(&load);
    let reeval = run_datacell(&load, ExecutionMode::Reevaluate);
    let incr = run_datacell(&load, ExecutionMode::Incremental);
    t.row(&["volcano tuple-at-a-time".into(), f1(volcano), "1.0x".into()]);
    t.row(&[
        "DataCell bulk (re-evaluation)".into(),
        f1(reeval),
        format!("{:.1}x", reeval / volcano),
    ]);
    t.row(&[
        "DataCell bulk (incremental)".into(),
        f1(incr),
        format!("{:.1}x", incr / volcano),
    ]);
    t.print();

    println!("\nE8b: store-first-query-later — per-batch answer latency as history grows");
    let mut store = StoreFirstEngine::new();
    store.create_table("CREATE STREAM sensors (ts TIMESTAMP, sensor BIGINT, temp DOUBLE)")
        .unwrap();
    let sq = store
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) FROM sensors \
             WHERE temp > 16.0 GROUP BY sensor",
        )
        .unwrap();
    // DataCell equivalent: unwindowed continuous query (consume-once).
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let cq = cell
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp), MAX(temp) FROM sensors \
             WHERE temp > 16.0 GROUP BY sensor",
        )
        .unwrap();

    let mut gen_a = SensorStream::new(SensorConfig::default());
    let mut gen_b = SensorStream::new(SensorConfig::default());
    let mut t = Table::new(&[
        "stored rows", "store-first us/batch", "DataCell us/batch", "ratio",
    ]);
    let mut stored = 0usize;
    for step in 1..=10 {
        let rows_a = gen_a.take_rows(load.batch);
        let rows_b = gen_b.take_rows(load.batch);
        stored += load.batch;
        store.push_rows("sensors", &rows_a).unwrap();
        let (_, sf_us) = datacell_bench::time_once(|| store.evaluate(sq).unwrap());
        cell.push_rows("sensors", &rows_b).unwrap();
        let (_, dc_us) = datacell_bench::time_once(|| {
            cell.run_until_idle().unwrap();
            cell.take_results(cq).unwrap()
        });
        if step % 2 == 0 {
            t.row(&[
                stored.to_string(),
                f1(sf_us),
                f1(dc_us),
                f2(sf_us / dc_us.max(0.001)),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: columnar bulk processing beats the interpreted volcano\nmodel by an order of magnitude at equal plans; store-first latency grows\nlinearly with history while the continuous engine stays flat."
    );
}
