//! E3 — "Window Sizes" (paper §4).
//!
//! "Users may define window sizes and step sizes for sliding window queries
//! and visually observe how query plans and performance change with each
//! change in those parameters." We sweep the (window, slide) grid including
//! the tumbling diagonal (slide = window) where the two modes converge.

use datacell_bench::report::{f1, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const SLIDES_MEASURED: usize = 16;

fn run(size: usize, slide: usize, mode: ExecutionMode) -> f64 {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let sql = format!(
        "SELECT sensor, SUM(temp), COUNT(*) FROM sensors [ROWS {size} SLIDE {slide}] GROUP BY sensor"
    );
    let q = cell.register_query_with_mode(&sql, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig { sensors: 64, ..Default::default() });
    cell.push_rows("sensors", &gen.take_rows(size)).unwrap();
    cell.run_until_idle().unwrap();
    let _ = cell.take_results(q);
    let mut samples = Vec::with_capacity(SLIDES_MEASURED);
    for _ in 0..SLIDES_MEASURED {
        let rows = gen.take_rows(slide);
        cell.push_rows("sensors", &rows).unwrap();
        let start = std::time::Instant::now();
        cell.run_until_idle().unwrap();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        let _ = cell.take_results(q);
    }
    datacell_bench::median_micros(samples)
}

fn main() {
    let events = datacell_bench::cli::events(32_768);
    println!("E3: window/slide sweep, grouped aggregation [ROWS w SLIDE s] GROUP BY sensor\n");
    let mut t = Table::new(&[
        "window", "slide", "overlap", "reeval us/slide", "incr us/slide", "speedup",
    ]);
    for size in datacell_bench::cli::scaled_windows(events, &[4096, 32_768]) {
        for &denom in &[64usize, 16, 4, 1] {
            let slide = (size / denom).max(1);
            let re = run(size, slide, ExecutionMode::Reevaluate);
            let inc = run(size, slide, ExecutionMode::Incremental);
            t.row(&[
                size.to_string(),
                slide.to_string(),
                format!("{denom}x"),
                f1(re),
                f1(inc),
                format!("{:.1}x", re / inc.max(0.001)),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: the incremental advantage grows with overlap (w/s);\non the tumbling diagonal (slide = window, overlap 1x) the two modes\nconverge because every tuple is processed exactly once either way."
    );
}
