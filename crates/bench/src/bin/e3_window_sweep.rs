//! E3 — "Window Sizes" (paper §4).
//!
//! "Users may define window sizes and step sizes for sliding window queries
//! and visually observe how query plans and performance change with each
//! change in those parameters." We sweep the (window, slide) grid including
//! the tumbling diagonal (slide = window) where the two modes converge.

use datacell_bench::report::{f1, snapshot, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const SLIDES_MEASURED: usize = 16;

/// Overlap factor of the snapshot configuration (window = 64 × slide):
/// the sliding-window shape this PR's zero-copy BAT views optimize.
const SNAPSHOT_OVERLAP: usize = 64;

fn run(size: usize, slide: usize, mode: ExecutionMode) -> f64 {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let sql = format!(
        "SELECT sensor, SUM(temp), COUNT(*) FROM sensors [ROWS {size} SLIDE {slide}] GROUP BY sensor"
    );
    let q = cell.register_query_with_mode(&sql, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig { sensors: 64, ..Default::default() });
    cell.push_rows("sensors", &gen.take_rows(size)).unwrap();
    cell.run_until_idle().unwrap();
    let _ = cell.take_results(q);
    let mut samples = Vec::with_capacity(SLIDES_MEASURED);
    for _ in 0..SLIDES_MEASURED {
        let rows = gen.take_rows(slide);
        cell.push_rows("sensors", &rows).unwrap();
        let start = std::time::Instant::now();
        cell.run_until_idle().unwrap();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        let _ = cell.take_results(q);
    }
    datacell_bench::median_micros(samples)
}

fn main() {
    let events = datacell_bench::cli::events(32_768);
    println!("E3: window/slide sweep, grouped aggregation [ROWS w SLIDE s] GROUP BY sensor\n");
    let mut t = Table::new(&[
        "window", "slide", "overlap", "reeval us/slide", "incr us/slide", "speedup",
    ]);
    let mut snap_events_per_sec = 0.0f64;
    for size in datacell_bench::cli::scaled_windows(events, &[4096, 32_768]) {
        for &denom in &[64usize, 16, 4, 1] {
            let slide = (size / denom).max(1);
            let re = run(size, slide, ExecutionMode::Reevaluate);
            let inc = run(size, slide, ExecutionMode::Incremental);
            if denom == SNAPSHOT_OVERLAP {
                // Track the most overlapping window shape measured: slide
                // tuples consumed per re-evaluation firing.
                snap_events_per_sec = snap_events_per_sec.max(slide as f64 / re * 1e6);
            }
            t.row(&[
                size.to_string(),
                slide.to_string(),
                format!("{denom}x"),
                f1(re),
                f1(inc),
                format!("{:.1}x", re / inc.max(0.001)),
            ]);
        }
    }
    t.print();
    snapshot("e3_window_sweep_overlap64", snap_events_per_sec);
    println!(
        "\nshape check: incremental mode amortizes re-computation as overlap\n(w/s) grows, while zero-copy window views make each re-evaluation pay\nonly for the tuples it aggregates, not for materializing the window; on\nthe tumbling diagonal (slide = window, overlap 1x) the modes converge\nbecause every tuple is processed exactly once either way."
    );
}
