//! E9 — multicore scaling of the partition-aware executor.
//!
//! The e6 multi-query workload, spread over independent streams so the
//! query network decomposes into several basket-partitions: each stream
//! feeds its own group of standing queries, so partitions share no baskets
//! and the scheduler's worker pool can fire them concurrently. We sweep the
//! `workers` knob, report ingest throughput and speedup over serial, and —
//! because parallelism must never change results — checksum every query's
//! output and fail loudly if any worker count diverges.

use datacell_bench::report::{f1, snapshot, Table};
use datacell_core::{DataCell, DataCellConfig, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const TUPLES: usize = 120_000;
const STREAMS: usize = 8;
const QUERIES: usize = 16;

/// FNV-1a over every result row of every query, drained in query-id order.
fn fold_results(cell: &mut DataCell, qids: &[u64], checksum: &mut u64) {
    for q in qids {
        for chunk in cell.take_results(*q).unwrap() {
            for row in chunk.rows() {
                for value in &row {
                    for b in value.to_string().as_bytes() {
                        *checksum ^= u64::from(*b);
                        *checksum = checksum.wrapping_mul(0x100000001b3);
                    }
                }
            }
        }
    }
}

/// Run the full workload at one worker count. Returns
/// `(tuples/s, result checksum, partitions)`.
fn run(tuples: usize, workers: usize) -> (f64, u64, usize) {
    let per_stream = tuples / STREAMS;
    let window = datacell_bench::cli::scaled_window(per_stream, 1024);
    let slide = (window / 4).max(1);
    let mut cell = DataCell::new(DataCellConfig { workers, ..Default::default() });
    for s in 0..STREAMS {
        cell.execute(&SensorStream::create_stream_sql(&format!("sensors{s}"))).unwrap();
    }
    let mut qids = Vec::new();
    for i in 0..QUERIES {
        // Same varied query mix as e6 (distinct selection thresholds), but
        // distributed round-robin over the streams: queries on different
        // streams land in different partitions.
        let threshold = 14.0 + (i % 12) as f64;
        let sql = format!(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors{} [ROWS {window} SLIDE {slide}] \
             WHERE temp > {threshold:.1} GROUP BY sensor",
            i % STREAMS
        );
        qids.push(cell.register_query_with_mode(&sql, ExecutionMode::Incremental).unwrap());
    }
    let mut gens: Vec<SensorStream> = (0..STREAMS)
        .map(|s| {
            SensorStream::new(SensorConfig {
                sensors: 32,
                seed: 42 + s as u64,
                ..Default::default()
            })
        })
        .collect();
    let batch = (per_stream / 30).clamp(1, 2000);
    let mut checksum: u64 = 0xcbf29ce484222325;
    let mut fed = 0usize;
    let start = std::time::Instant::now();
    while fed < tuples {
        for (s, gen) in gens.iter_mut().enumerate() {
            cell.push_rows(&format!("sensors{s}"), &gen.take_rows(batch)).unwrap();
        }
        fed += batch * STREAMS;
        cell.run_until_idle().unwrap();
        fold_results(&mut cell, &qids, &mut checksum);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let partitions = cell.stats().partitions;
    (fed as f64 / elapsed, checksum, partitions)
}

fn main() {
    let tuples = datacell_bench::cli::events(TUPLES);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "E9: multicore executor scaling — {QUERIES} standing queries over \
         {STREAMS} independent streams ({tuples} tuples, {cores} cores available)\n"
    );
    let mut t = Table::new(&["workers", "stream tuples/s", "speedup vs serial", "partitions"]);
    let mut results = Vec::new();
    for workers in [1usize, 2, 4] {
        results.push((workers, run(tuples, workers)));
    }
    let serial_tps = results[0].1 .0;
    for (workers, (tps, _, partitions)) in &results {
        t.row(&[
            workers.to_string(),
            f1(*tps),
            format!("{:.2}x", tps / serial_tps),
            partitions.to_string(),
        ]);
    }
    t.print();

    let serial_sum = results[0].1 .1;
    if results.iter().any(|(_, (_, sum, _))| *sum != serial_sum) {
        eprintln!("FAIL: result checksums diverged across worker counts: {results:?}");
        std::process::exit(1);
    }
    println!(
        "\ndeterminism: ok (checksum {serial_sum:016x} identical across worker counts)"
    );
    println!(
        "\nshape check: independent basket-partitions fire concurrently, so on a\n\
         multicore host throughput scales with workers until partitions (or\n\
         cores) run out; per-query results are bit-identical at every width."
    );
    snapshot("e9_multicore_w1", serial_tps);
    let best = results.iter().map(|(_, (tps, _, _))| *tps).fold(serial_tps, f64::max);
    snapshot("e9_multicore_best", best);
}
