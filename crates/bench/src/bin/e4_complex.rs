//! E4 — "Complex Queries" (paper §4).
//!
//! "The audience will be able to see the difference that results from
//! complex operators (e.g., joins) in continuous query plans with sliding
//! windows as opposed to simple select project aggregation queries."
//!
//! Three query classes over the same windowed stream, in both modes:
//!  * SPA        — filter + grouped aggregate;
//!  * stream⋈table — enrich with a dimension table, then aggregate;
//!  * stream⋈stream — windowed equi-join of two streams, then aggregate.

use datacell_bench::report::{f1, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_storage::{Row, Value};
use datacell_workload::{SensorConfig, SensorStream};

const FULL_WINDOW: usize = 8192;
const SLIDES_MEASURED: usize = 12;

fn setup(cell: &mut DataCell) {
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    cell.execute("CREATE STREAM alerts (ts TIMESTAMP, sensor BIGINT, level BIGINT)")
        .unwrap();
    cell.execute("CREATE TABLE dim (sensor BIGINT, zone BIGINT)").unwrap();
    let rows: Vec<Row> = (0..100)
        .map(|i| vec![Value::Int(i), Value::Int(i % 8)])
        .collect();
    let stmt = format!(
        "INSERT INTO dim VALUES {}",
        rows.iter()
            .map(|r| format!("({}, {})", r[0], r[1]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    cell.execute(&stmt).unwrap();
}

fn alert_rows(gen: &mut SensorStream, n: usize) -> Vec<Row> {
    gen.take_rows(n)
        .into_iter()
        .map(|r| {
            let level = r[1].as_int().unwrap() % 5;
            vec![r[0].clone(), r[1].clone(), Value::Int(level)]
        })
        .collect()
}

fn run(sql: &str, mode: ExecutionMode, two_streams: bool, window: usize, slide: usize) -> f64 {
    let mut cell = DataCell::default();
    setup(&mut cell);
    let q = cell.register_query_with_mode(sql, mode).unwrap();
    let mut gen = SensorStream::new(SensorConfig { sensors: 100, ..Default::default() });
    let mut gen2 = SensorStream::new(SensorConfig { sensors: 100, seed: 99, ..Default::default() });

    let feed = |cell: &mut DataCell, n: usize, g1: &mut SensorStream, g2: &mut SensorStream| {
        cell.push_rows("sensors", &g1.take_rows(n)).unwrap();
        if two_streams {
            let rows = alert_rows(g2, n);
            cell.push_rows("alerts", &rows).unwrap();
        }
    };

    feed(&mut cell, window, &mut gen, &mut gen2);
    cell.run_until_idle().unwrap();
    let _ = cell.take_results(q);

    let mut samples = Vec::with_capacity(SLIDES_MEASURED);
    for _ in 0..SLIDES_MEASURED {
        feed(&mut cell, slide, &mut gen, &mut gen2);
        let start = std::time::Instant::now();
        cell.run_until_idle().unwrap();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        let _ = cell.take_results(q);
    }
    datacell_bench::median_micros(samples)
}

fn main() {
    let events = datacell_bench::cli::events(FULL_WINDOW * 2);
    let window = datacell_bench::cli::scaled_window(events, FULL_WINDOW);
    let slide = (window / 16).max(1);
    println!(
        "E4: query complexity under sliding windows [ROWS {window} SLIDE {slide}], both modes\n"
    );
    let spa = format!(
        "SELECT sensor, AVG(temp) FROM sensors [ROWS {window} SLIDE {slide}] \
         WHERE temp > 18.0 GROUP BY sensor"
    );
    let st_join = format!(
        "SELECT dim.zone, AVG(sensors.temp), COUNT(*) \
         FROM sensors [ROWS {window} SLIDE {slide}] JOIN dim ON sensors.sensor = dim.sensor \
         GROUP BY dim.zone"
    );
    let ss_join = format!(
        "SELECT COUNT(*), AVG(sensors.temp) \
         FROM sensors [ROWS {window} SLIDE {slide}] \
         JOIN alerts [ROWS {window} SLIDE {slide}] ON sensors.sensor = alerts.sensor \
         WHERE alerts.level >= 3"
    );

    let mut t = Table::new(&["query class", "reeval us/slide", "incr us/slide", "speedup"]);
    for (label, sql, two) in [
        ("SPA", spa.as_str(), false),
        ("stream JOIN table", st_join.as_str(), false),
        ("stream JOIN stream", ss_join.as_str(), true),
    ] {
        let re = run(sql, ExecutionMode::Reevaluate, two, window, slide);
        let inc = run(sql, ExecutionMode::Incremental, two, window, slide);
        t.row(&[
            label.to_string(),
            f1(re),
            f1(inc),
            format!("{:.1}x", re / inc.max(0.001)),
        ]);
    }
    t.print();
    println!(
        "\nshape check: joins pay the most under re-evaluation (hash tables\nrebuilt over the whole window every slide), so incremental processing\nhelps complex queries more than cheap SPA plans."
    );
}
