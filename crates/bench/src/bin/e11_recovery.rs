//! E11 — Durability: WAL ingest overhead and recovery (replay) throughput.
//!
//! Three measurements over the same windowed-aggregation scenario:
//!
//! 1. **baseline ingest** — in-memory engine (WAL off);
//! 2. **durable ingest** — WAL on, per fsync policy (`never`, `every=64`,
//!    `always`): how much the write-ahead logging + per-fire state records
//!    cost on the receptor/PUSH hot path;
//! 3. **replay** — drop the durable engine without a checkpoint and time
//!    `DataCell::open` recovering it from the logs (events/sec of replay).
//!
//! A correctness gate runs alongside: the recovered engine must report the
//! same arrived/high-water counters and continue the window sequence.

use std::path::PathBuf;
use std::time::Instant;

use datacell_bench::report::{f1, snapshot, Table};
use datacell_core::{DataCell, DataCellConfig, SyncPolicy, WalConfig};
use datacell_workload::{SensorConfig, SensorStream};

const TOTAL_TUPLES: usize = 200_000;
const BATCH: usize = 512;

fn wal_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("datacell-e11-{}-{tag}", std::process::id()))
}

fn config_with(wal: Option<WalConfig>) -> DataCellConfig {
    DataCellConfig { wal, ..DataCellConfig::default() }
}

/// Feed `total` sensor tuples in batches; returns events/sec.
fn ingest(cell: &mut DataCell, total: usize) -> f64 {
    let q = cell
        .register_query("SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS 4096 SLIDE 1024] GROUP BY sensor")
        .unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());
    let start = Instant::now();
    let mut fed = 0usize;
    while fed < total {
        let n = BATCH.min(total - fed);
        let rows = gen.take_rows(n);
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        fed += n;
    }
    let _ = cell.take_results(q);
    total as f64 / start.elapsed().as_secs_f64()
}

fn run_durable(total: usize, tag: &str, sync: SyncPolicy) -> (f64, f64) {
    let dir = wal_dir(tag);
    std::fs::remove_dir_all(&dir).ok();
    let wal = WalConfig { dir: dir.clone(), sync, ..WalConfig::at(&dir) };

    let mut cell = DataCell::open(config_with(Some(wal.clone()))).unwrap();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let tps = ingest(&mut cell, total);
    let stats = cell.stats();
    let arrived = stats.baskets[0].arrived;
    let firings = stats.total_firings;
    // Crash: no checkpoint — recovery reads snapshot-less logs.
    drop(cell);

    let start = Instant::now();
    let cell = DataCell::open(config_with(Some(wal))).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let rstats = cell.stats();
    assert!(cell.recovered(), "e11: reopen must recover");
    assert_eq!(rstats.baskets[0].arrived, arrived, "e11: arrived counter lost");
    assert_eq!(rstats.total_firings, 0, "e11: recovery must not re-fire");
    let _ = firings;
    let replayed = rstats.wal.as_ref().map_or(0, |w| w.recovered_rows);
    let replay_tps = if elapsed > 0.0 { replayed as f64 / elapsed } else { 0.0 };
    drop(cell);
    std::fs::remove_dir_all(&dir).ok();
    (tps, replay_tps)
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_TUPLES);
    println!("E11: durable streams — WAL ingest overhead and replay throughput");
    println!(
        "query: SELECT sensor, COUNT(*), AVG(temp) FROM sensors [ROWS 4096 SLIDE 1024] GROUP BY sensor"
    );
    println!("{total} tuples, {BATCH}-row PUSH batches\n");

    let mut baseline_cell = DataCell::new(config_with(None));
    baseline_cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let baseline = ingest(&mut baseline_cell, total);
    drop(baseline_cell);

    let mut t = Table::new(&["wal", "ingest tuples/s", "overhead", "replay tuples/s"]);
    t.row(&["off".into(), f1(baseline), "-".into(), "-".into()]);
    let mut replay_best = 0.0f64;
    let mut ingest_on = 0.0f64;
    for (tag, sync) in [
        ("never", SyncPolicy::Never),
        ("every64", SyncPolicy::EveryN(64)),
        ("always", SyncPolicy::Always),
    ] {
        let (tps, replay) = run_durable(total, tag, sync);
        if tag == "never" {
            ingest_on = tps;
        }
        replay_best = replay_best.max(replay);
        let overhead = format!("{:.1}%", (baseline / tps - 1.0) * 100.0);
        t.row(&[format!("fsync={tag}"), f1(tps), overhead, f1(replay)]);
    }
    t.print();

    snapshot("e11_ingest_wal_off", baseline);
    snapshot("e11_ingest_wal_on", ingest_on);
    snapshot("e11_replay", replay_best);
    println!(
        "\nshape check: fsync=never costs serialization only; fsync=always pays\n\
         one fdatasync per batch; replay is pure bulk append + plan warmup,\n\
         so it should beat live ingest (no per-batch scheduling round-trips)."
    );
}
