//! E7 — the Linear Road claim (paper §3): "DataCell is shown to perform
//! extremely well, easily meeting the requirements of the Linear Road
//! Benchmark in [16]".
//!
//! LRB's pass criterion is real-time processing: responses within 5 s
//! while the simulator feeds L expressways of traffic. With our synthetic
//! LRB substitute (DESIGN.md §3) the equivalent criterion is: the engine
//! must process each simulated 30-second report round in less wall-clock
//! time than the round represents. We raise the load factor (number of
//! expressways) until an engine/mode can no longer keep up, and report the
//! maximum sustained load — DataCell incremental vs. full re-evaluation.

use datacell_bench::report::{f2, Table};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{LinearRoadConfig, LinearRoadStream};

/// Simulated seconds of traffic per trial.
const SIM_SECONDS: i64 = 600;

/// Run the LRB query mix at `expressways` load; returns
/// (wall seconds per simulated second, reports/s processed).
fn run(sim_seconds: i64, expressways: u32, mode: ExecutionMode) -> (f64, f64) {
    let mut cell = DataCell::default();
    cell.execute(&LinearRoadStream::create_stream_sql("lr")).unwrap();
    let mut qids = Vec::new();
    for q in LinearRoadStream::standard_queries("lr") {
        qids.push(cell.register_query_with_mode(&q, mode).unwrap());
    }
    let config = LinearRoadConfig { expressways, ..Default::default() };
    let mut gen = LinearRoadStream::new(config.clone());
    let reports_per_round = gen.vehicle_count();
    let rounds = ((sim_seconds / config.report_interval_s) as usize).max(1);

    let start = std::time::Instant::now();
    let mut total_reports = 0usize;
    for _ in 0..rounds {
        let rows = gen.take_rows(reports_per_round);
        total_reports += rows.len();
        cell.push_rows("lr", &rows).unwrap();
        cell.run_until_idle().unwrap();
        for q in &qids {
            let _ = cell.take_results(*q);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed / sim_seconds as f64, total_reports as f64 / elapsed)
}

fn main() {
    // `--events N` approximates the total reports per trial: it shortens the
    // simulated span and caps the expressway sweep so smoke runs stay tiny.
    let events = datacell_bench::cli::events(0);
    let sim_seconds = if events == 0 {
        SIM_SECONDS
    } else {
        ((events as i64 / 500).max(1) * 30).min(SIM_SECONDS)
    };
    let xways_cap = if events == 0 { 64 } else { ((events / 500).max(1) as u32).min(64) };
    println!(
        "E7: Linear Road-inspired mix (segment stats + accident detection + volume)\n\
         {sim_seconds} simulated seconds; pass = wall-time/sim-time ratio < 1.0\n"
    );
    let mut t = Table::new(&[
        "xways", "vehicles", "mode", "wall/sim ratio", "headroom", "reports/s", "verdict",
    ]);
    let mut max_pass = [0u32; 2];
    for &xways in [1u32, 4, 16, 64].iter().filter(|&&x| x <= xways_cap) {
        for (mi, mode) in [ExecutionMode::Reevaluate, ExecutionMode::Incremental]
            .iter()
            .enumerate()
        {
            let (ratio, rps) = run(sim_seconds, xways, *mode);
            let pass = ratio < 1.0;
            if pass {
                max_pass[mi] = max_pass[mi].max(xways);
            }
            t.row(&[
                xways.to_string(),
                (xways * 500).to_string(),
                format!("{mode:?}"),
                format!("{ratio:.4}"),
                format!("{:.0}x", 1.0 / ratio.max(1e-9)),
                f2(rps),
                if pass { "PASS".into() } else { "fail".to_string() },
            ]);
        }
    }
    t.print();
    println!(
        "\nmax sustained load: reevaluate L={}, incremental L={}",
        max_pass[0], max_pass[1]
    );
    println!(
        "\nshape check: both modes meet real-time with orders-of-magnitude\nheadroom at every tested load (the paper's 'easily meeting the\nrequirements' claim); at high L incremental keeps ~1.5x more headroom\nbecause the 5-minute segment-statistics window re-touches 5x less data\nper slide."
    );
}
