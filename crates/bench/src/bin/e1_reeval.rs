//! E1 — "Simple Re-evaluation Scenarios" (paper §4).
//!
//! Full re-evaluation mode for non-window queries: as batches of stream
//! tuples arrive, the standing select-project-aggregate query fires over
//! exactly the new tuples. We sweep the arrival batch size and report
//! throughput and per-firing latency; `--sweep-threshold` additionally
//! sweeps the scheduler's firing threshold (ablation A2 in DESIGN.md);
//! `--obs-compare` runs the best batch size with observability off and on
//! and snapshots both, bounding the tracing overhead (<2% budget).

use datacell_bench::report::{f1, f2, snapshot, snapshot_latency, Table};
use datacell_core::{DataCell, DataCellConfig};
use datacell_workload::{SensorConfig, SensorStream};

const TOTAL_TUPLES: usize = 200_000;

struct RunOut {
    throughput: f64,
    latency_us: f64,
    /// End-to-end (arrival → result) latency percentiles from the e2e
    /// histogram — zeros when observability is off.
    e2e: (f64, f64, f64),
}

fn run_batch_size(total: usize, batch: usize, threshold: usize, observability: bool) -> RunOut {
    let mut cell = DataCell::new(DataCellConfig {
        firing_threshold: threshold,
        observability,
        ..Default::default()
    });
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors WHERE temp > 18.0 GROUP BY sensor",
        )
        .unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());

    let start = std::time::Instant::now();
    let mut fed = 0usize;
    while fed < total {
        let n = batch.min(total - fed);
        let rows = gen.take_rows(n);
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        fed += n;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let _ = cell.take_results(q);
    let stats = cell.stats();
    let firings = stats.queries[0].firings.max(1);
    let e2e = cell
        .metrics_snapshot()
        .histogram("datacell_e2e_latency_us")
        .map(|h| h.p50_p95_p99())
        .unwrap_or((0.0, 0.0, 0.0));
    RunOut {
        throughput: total as f64 / elapsed,
        latency_us: elapsed * 1e6 / firings as f64,
        e2e,
    }
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_TUPLES);
    let sweep_threshold = datacell_bench::cli::has_flag("--sweep-threshold");
    let obs_compare = datacell_bench::cli::has_flag("--obs-compare");

    println!("E1: full re-evaluation mode, SPA query over {total} sensor tuples");
    println!("query: SELECT sensor, COUNT(*), AVG(temp) FROM sensors WHERE temp > 18 GROUP BY sensor\n");

    let mut t = Table::new(&["batch", "tuples/s", "us/firing", "e2e p50", "e2e p95", "e2e p99"]);
    let mut best = 0.0f64;
    let mut best_batch = 1usize;
    let mut best_e2e = (0.0, 0.0, 0.0);
    for batch in [1usize, 8, 64, 512, 4096, 32_768] {
        if batch > total && batch != 1 {
            continue;
        }
        let r = run_batch_size(total, batch, 1, true);
        if r.throughput > best {
            best = r.throughput;
            best_batch = batch;
            best_e2e = r.e2e;
        }
        t.row(&[
            batch.to_string(),
            f1(r.throughput),
            f2(r.latency_us),
            f1(r.e2e.0),
            f1(r.e2e.1),
            f1(r.e2e.2),
        ]);
    }
    t.print();
    snapshot_latency("e1_reeval_best", best, best_e2e);
    println!("\nshape check: throughput rises with batch size (bulk processing\namortizes per-firing scheduling), latency per firing grows with batch.\n");

    if obs_compare {
        println!("observability overhead: best batch ({best_batch}) with tracing off vs on");
        let off = run_batch_size(total, best_batch, 1, false);
        let on = run_batch_size(total, best_batch, 1, true);
        let overhead = 100.0 * (1.0 - on.throughput / off.throughput.max(1.0));
        let mut t = Table::new(&["observability", "tuples/s", "overhead %"]);
        t.row(&["off".into(), f1(off.throughput), "-".into()]);
        t.row(&["on".into(), f1(on.throughput), f2(overhead)]);
        t.print();
        snapshot("e1_obs_off", off.throughput);
        snapshot_latency("e1_obs_on", on.throughput, on.e2e);
        println!("\nbudget: tracing must stay within ~2% of the untraced engine\n(per-batch arrival ticks + histogram records, no per-tuple work).\n");
    }

    if sweep_threshold {
        println!("A2: firing-threshold sweep (arrivals in batches of 8)");
        let mut t = Table::new(&["threshold", "tuples/s", "us/firing"]);
        for threshold in [1usize, 8, 64, 512, 4096] {
            if threshold > total && threshold != 1 {
                continue;
            }
            let r = run_batch_size(total, 8, threshold, true);
            t.row(&[threshold.to_string(), f1(r.throughput), f2(r.latency_us)]);
        }
        t.print();
        println!("\nshape check: higher thresholds batch small arrivals into fewer,\nlarger firings — throughput up, per-event latency up.");
    }
}
