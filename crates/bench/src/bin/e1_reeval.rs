//! E1 — "Simple Re-evaluation Scenarios" (paper §4).
//!
//! Full re-evaluation mode for non-window queries: as batches of stream
//! tuples arrive, the standing select-project-aggregate query fires over
//! exactly the new tuples. We sweep the arrival batch size and report
//! throughput and per-firing latency; `--sweep-threshold` additionally
//! sweeps the scheduler's firing threshold (ablation A2 in DESIGN.md).

use datacell_bench::report::{f1, f2, snapshot, Table};
use datacell_core::{DataCell, DataCellConfig};
use datacell_workload::{SensorConfig, SensorStream};

const TOTAL_TUPLES: usize = 200_000;

fn run_batch_size(total: usize, batch: usize, threshold: usize) -> (f64, f64) {
    let mut cell = DataCell::new(DataCellConfig {
        firing_threshold: threshold,
        ..Default::default()
    });
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell
        .register_query(
            "SELECT sensor, COUNT(*), AVG(temp) FROM sensors WHERE temp > 18.0 GROUP BY sensor",
        )
        .unwrap();
    let mut gen = SensorStream::new(SensorConfig::default());

    let start = std::time::Instant::now();
    let mut fed = 0usize;
    while fed < total {
        let n = batch.min(total - fed);
        let rows = gen.take_rows(n);
        cell.push_rows("sensors", &rows).unwrap();
        cell.run_until_idle().unwrap();
        fed += n;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let _ = cell.take_results(q);
    let stats = cell.stats();
    let firings = stats.queries[0].firings.max(1);
    let throughput = total as f64 / elapsed;
    let latency_us = elapsed * 1e6 / firings as f64;
    (throughput, latency_us)
}

fn main() {
    let total = datacell_bench::cli::events(TOTAL_TUPLES);
    let sweep_threshold = datacell_bench::cli::has_flag("--sweep-threshold");

    println!("E1: full re-evaluation mode, SPA query over {total} sensor tuples");
    println!("query: SELECT sensor, COUNT(*), AVG(temp) FROM sensors WHERE temp > 18 GROUP BY sensor\n");

    let mut t = Table::new(&["batch", "tuples/s", "us/firing"]);
    let mut best = 0.0f64;
    for batch in [1usize, 8, 64, 512, 4096, 32_768] {
        if batch > total && batch != 1 {
            continue;
        }
        let (tps, lat) = run_batch_size(total, batch, 1);
        best = best.max(tps);
        t.row(&[batch.to_string(), f1(tps), f2(lat)]);
    }
    t.print();
    snapshot("e1_reeval_best", best);
    println!("\nshape check: throughput rises with batch size (bulk processing\namortizes per-firing scheduling), latency per firing grows with batch.\n");

    if sweep_threshold {
        println!("A2: firing-threshold sweep (arrivals in batches of 8)");
        let mut t = Table::new(&["threshold", "tuples/s", "us/firing"]);
        for threshold in [1usize, 8, 64, 512, 4096] {
            if threshold > total && threshold != 1 {
                continue;
            }
            let (tps, lat) = run_batch_size(total, 8, threshold);
            t.row(&[threshold.to_string(), f1(tps), f2(lat)]);
        }
        t.print();
        println!("\nshape check: higher thresholds batch small arrivals into fewer,\nlarger firings — throughput up, per-event latency up.");
    }
}
