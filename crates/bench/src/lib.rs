//! # datacell-bench
//!
//! The experiment harness: one binary per paper experiment (see DESIGN.md
//! §4 for the experiment index) plus Criterion micro-benchmarks. Every
//! binary prints the table/series the corresponding demo scenario or claim
//! describes; EXPERIMENTS.md records paper-expected shape vs. measured.

#![warn(missing_docs)]

pub mod cli;
pub mod report;

pub use report::{median_micros, time_once, Table};
