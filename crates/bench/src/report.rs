//! Tiny reporting toolkit for the experiment binaries: aligned ASCII
//! tables and stable timing helpers.

use std::time::Instant;

/// Time one closure invocation in microseconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Median of a sample of microsecond measurements.
pub fn median_micros(mut samples: Vec<f64>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// An aligned ASCII table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Emit a machine-readable snapshot line (`SNAPSHOT {json}`) that
/// `scripts/bench_snapshot.sh` collects into `BENCH_PR<n>.json`, giving the
/// perf trajectory one comparable events/sec data point per experiment.
pub fn snapshot(experiment: &str, events_per_sec: f64) {
    println!("SNAPSHOT {{\"experiment\":\"{experiment}\",\"events_per_sec\":{events_per_sec:.1}}}");
}

/// Extended snapshot line: throughput plus end-to-end latency percentiles
/// (microseconds) from the engine's `datacell_e2e_latency_us` histogram —
/// the arrival-tick → result-delivery distribution observability traces.
pub fn snapshot_latency(experiment: &str, events_per_sec: f64, p: (f64, f64, f64)) {
    let (p50, p95, p99) = p;
    println!(
        "SNAPSHOT {{\"experiment\":\"{experiment}\",\"events_per_sec\":{events_per_sec:.1},\
         \"p50_us\":{p50:.1},\"p95_us\":{p95:.1},\"p99_us\":{p99:.1}}}"
    );
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median_micros(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_micros(vec![1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median_micros(vec![]), 0.0);
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x".into(), "10".into()]);
        t.row(&["longer".into(), "7".into()]);
        let text = t.render();
        assert!(text.contains("name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().filter(|&c| c == '-').count(), lines[1].len());
    }

    #[test]
    fn time_once_measures() {
        let (v, us) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }
}
