//! Minimal argument handling shared by the e1–e9 experiment binaries.
//!
//! Every binary accepts `--events N` (or `--events=N`) to scale its
//! workload down from the paper-sized default — CI smoke tests run them
//! with `--events 100` so a full experiment sweep stays out of the test
//! path — plus per-binary flags checked with [`has_flag`].

/// Parsed `--events N` / `--events=N`, or `default` when absent.
///
/// Panics with a usage message on a malformed value, so a typo fails
/// loudly instead of silently running the full-size experiment.
pub fn events(default: usize) -> usize {
    events_from(std::env::args().skip(1), default)
}

/// `true` when `name` (e.g. `"--sweep-threshold"`) is among the args.
pub fn has_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

fn events_from(args: impl Iterator<Item = String>, default: usize) -> usize {
    let mut args = args;
    while let Some(arg) = args.next() {
        let value = if arg == "--events" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--events=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--events requires a value"));
        let parsed: usize = value
            .parse()
            .unwrap_or_else(|_| panic!("--events: expected a positive integer, got {value:?}"));
        // 0 is rejected rather than parsed: several binaries use 0 internally
        // as the "flag absent" sentinel (e7 would silently run full scale).
        if parsed == 0 {
            panic!("--events: expected a positive integer, got {value:?}");
        }
        return parsed;
    }
    default
}

/// Clamp an experiment's window size to what `events` can fill, with a
/// small floor so tiny smoke runs still exercise real windows.
pub fn scaled_window(events: usize, full: usize) -> usize {
    full.min((events / 2).max(16))
}

/// The subset of `full_sizes` that `events` can fill; when none fits,
/// one window scaled down from the smallest full size.
pub fn scaled_windows(events: usize, full_sizes: &[usize]) -> Vec<usize> {
    let fitting: Vec<usize> = full_sizes.iter().copied().filter(|&s| s <= events).collect();
    if fitting.is_empty() {
        vec![scaled_window(events, full_sizes[0])]
    } else {
        fitting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default: usize) -> usize {
        events_from(args.iter().map(|s| s.to_string()), default)
    }

    #[test]
    fn default_when_absent() {
        assert_eq!(parse(&[], 500), 500);
        assert_eq!(parse(&["--other"], 500), 500);
    }

    #[test]
    fn space_and_equals_forms() {
        assert_eq!(parse(&["--events", "100"], 500), 100);
        assert_eq!(parse(&["--events=250"], 500), 250);
        assert_eq!(parse(&["--flag", "--events", "7"], 500), 7);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn malformed_value_panics() {
        parse(&["--events", "lots"], 500);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_rejected() {
        parse(&["--events", "0"], 500);
    }

    #[test]
    fn window_scaling() {
        assert_eq!(scaled_window(100, 8192), 50);
        assert_eq!(scaled_window(10, 8192), 16);
        assert_eq!(scaled_window(1_000_000, 8192), 8192);
    }

    #[test]
    fn window_list_scaling() {
        assert_eq!(scaled_windows(5000, &[1024, 4096, 16_384]), vec![1024, 4096]);
        assert_eq!(scaled_windows(100, &[1024, 4096]), vec![50]);
    }
}
