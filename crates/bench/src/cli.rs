//! Minimal argument handling shared by the e1–e9 experiment binaries.
//!
//! Every binary accepts `--events N` (or `--events=N`) to scale its
//! workload down from the paper-sized default — CI smoke tests run them
//! with `--events 100` so a full experiment sweep stays out of the test
//! path — plus per-binary flags checked with [`has_flag`].

/// Parsed `--events N` / `--events=N`, or `default` when absent.
///
/// Exits with a usage message on a malformed value, so a typo fails
/// loudly instead of silently running the full-size experiment.
pub fn events(default: usize) -> usize {
    match events_from(std::env::args().skip(1), default) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("datacell-bench: {msg}");
            std::process::exit(2)
        }
    }
}

/// `true` when `name` (e.g. `"--sweep-threshold"`) is among the args.
pub fn has_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Parsed `--name value` / `--name=value`, or `None` when absent.
pub fn arg_value(name: &str) -> Option<String> {
    arg_value_from(std::env::args().skip(1), name)
}

fn arg_value_from(args: impl Iterator<Item = String>, name: &str) -> Option<String> {
    let mut args = args;
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
        if let Some(v) = arg.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn events_from(args: impl Iterator<Item = String>, default: usize) -> Result<usize, String> {
    let mut args = args;
    while let Some(arg) = args.next() {
        let value = if arg == "--events" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--events=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let Some(value) = value else {
            return Err("--events requires a value".into());
        };
        // 0 is rejected rather than parsed: several binaries use 0 internally
        // as the "flag absent" sentinel (e7 would silently run full scale).
        return match value.parse::<usize>() {
            Ok(parsed) if parsed > 0 => Ok(parsed),
            _ => Err(format!("--events: expected a positive integer, got {value:?}")),
        };
    }
    Ok(default)
}

/// Clamp an experiment's window size to what `events` can fill, with a
/// small floor so tiny smoke runs still exercise real windows.
pub fn scaled_window(events: usize, full: usize) -> usize {
    full.min((events / 2).max(16))
}

/// The subset of `full_sizes` that `events` can fill; when none fits,
/// one window scaled down from the smallest full size.
pub fn scaled_windows(events: usize, full_sizes: &[usize]) -> Vec<usize> {
    let fitting: Vec<usize> = full_sizes.iter().copied().filter(|&s| s <= events).collect();
    if fitting.is_empty() {
        vec![scaled_window(events, full_sizes[0])]
    } else {
        fitting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default: usize) -> Result<usize, String> {
        events_from(args.iter().map(|s| s.to_string()), default)
    }

    #[test]
    fn default_when_absent() {
        assert_eq!(parse(&[], 500), Ok(500));
        assert_eq!(parse(&["--other"], 500), Ok(500));
    }

    #[test]
    fn space_and_equals_forms() {
        assert_eq!(parse(&["--events", "100"], 500), Ok(100));
        assert_eq!(parse(&["--events=250"], 500), Ok(250));
        assert_eq!(parse(&["--flag", "--events", "7"], 500), Ok(7));
    }

    #[test]
    fn malformed_value_rejected() {
        let err = parse(&["--events", "lots"], 500).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn zero_rejected() {
        let err = parse(&["--events", "0"], 500).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn missing_value_rejected() {
        let err = parse(&["--events"], 500).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn arg_value_forms() {
        let get = |args: &[&str]| {
            arg_value_from(args.iter().map(|s| s.to_string()), "--overlap")
        };
        assert_eq!(get(&[]), None);
        assert_eq!(get(&["--overlap", "identical"]), Some("identical".into()));
        assert_eq!(get(&["--overlap=disjoint"]), Some("disjoint".into()));
        assert_eq!(get(&["--events", "5", "--overlap", "mixed"]), Some("mixed".into()));
        assert_eq!(get(&["--overlapping"]), None, "prefix must not false-match");
    }

    #[test]
    fn window_scaling() {
        assert_eq!(scaled_window(100, 8192), 50);
        assert_eq!(scaled_window(10, 8192), 16);
        assert_eq!(scaled_window(1_000_000, 8192), 8192);
    }

    #[test]
    fn window_list_scaling() {
        assert_eq!(scaled_windows(5000, &[1024, 4096, 16_384]), vec![1024, 4096]);
        assert_eq!(scaled_windows(100, &[1024, 4096]), vec![50]);
    }
}
