//! Criterion companion to E9: steady-state cost of draining one ingest
//! round across independent basket-partitions, serial vs worker pool.
//!
//! Eight streams each feed two standing queries (16 partitionable
//! factories); per iteration we push one slide of tuples to every stream
//! and run the scheduler to quiescence. With `workers = 1` partitions fire
//! round-robin on the caller's thread; with `workers = 4` they fan out over
//! the pool — on a multicore host the parallel variant's per-round time
//! drops roughly with the worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacell_core::{DataCell, DataCellConfig, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const STREAMS: usize = 8;
const WINDOW: usize = 2048;
const SLIDE: usize = 512;

struct Rig {
    cell: DataCell,
    gens: Vec<SensorStream>,
    qids: Vec<u64>,
}

fn rig(workers: usize) -> Rig {
    let mut cell = DataCell::new(DataCellConfig { workers, ..Default::default() });
    let mut qids = Vec::new();
    for s in 0..STREAMS {
        cell.execute(&SensorStream::create_stream_sql(&format!("sensors{s}"))).unwrap();
        for threshold in [16.0, 21.0] {
            let sql = format!(
                "SELECT sensor, SUM(temp), COUNT(*) FROM sensors{s} \
                 [ROWS {WINDOW} SLIDE {SLIDE}] WHERE temp > {threshold:.1} GROUP BY sensor"
            );
            qids.push(
                cell.register_query_with_mode(&sql, ExecutionMode::Incremental).unwrap(),
            );
        }
    }
    let mut gens: Vec<SensorStream> = (0..STREAMS)
        .map(|s| {
            SensorStream::new(SensorConfig {
                sensors: 64,
                seed: 7 + s as u64,
                ..Default::default()
            })
        })
        .collect();
    // Fill the first full window everywhere so iterations measure the
    // steady state.
    for (s, gen) in gens.iter_mut().enumerate() {
        cell.push_rows(&format!("sensors{s}"), &gen.take_rows(WINDOW)).unwrap();
    }
    cell.run_until_idle().unwrap();
    for q in &qids {
        let _ = cell.take_results(*q);
    }
    Rig { cell, gens, qids }
}

fn bench_executor_widths(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_round");
    for workers in [1usize, 4] {
        let mut r = rig(workers);
        g.bench_with_input(
            BenchmarkId::new("workers", workers),
            &(),
            |b, _| {
                b.iter(|| {
                    for s in 0..STREAMS {
                        let rows = r.gens[s].take_rows(SLIDE);
                        r.cell.push_rows(&format!("sensors{s}"), &rows).unwrap();
                    }
                    r.cell.run_until_idle().unwrap();
                    for q in &r.qids {
                        r.cell.take_results(*q).unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = parallel;
    config = Criterion::default().sample_size(20);
    targets = bench_executor_widths
);
criterion_main!(parallel);
