//! µB — per-operator microbenchmarks of the columnar kernel: the
//! building blocks every experiment stands on (select with candidates,
//! fetch/late reconstruction, hash join, group+aggregate).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datacell_algebra::{
    aggregate_all, fetch, group_by, hash_join, select, AggKind, Candidates, CmpOp,
};
use datacell_storage::{Bat, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn int_bat(n: usize, cardinality: i64, seed: u64) -> Bat {
    let mut rng = StdRng::seed_from_u64(seed);
    Bat::from_ints((0..n).map(|_| rng.gen_range(0..cardinality)).collect())
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("select");
    for &n in &[4096usize, 65_536, 1_048_576] {
        let bat = int_bat(n, 1000, 1);
        g.bench_with_input(BenchmarkId::new("theta_gt_half", n), &bat, |b, bat| {
            b.iter(|| select(black_box(bat), None, CmpOp::Gt, &Value::Int(500)).unwrap())
        });
        // chained select over prior candidates (conjunction shape)
        let first = select(&bat, None, CmpOp::Gt, &Value::Int(250)).unwrap();
        g.bench_with_input(BenchmarkId::new("chained_select", n), &bat, |b, bat| {
            b.iter(|| {
                select(black_box(bat), Some(&first), CmpOp::Lt, &Value::Int(750)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch");
    for &n in &[65_536usize, 1_048_576] {
        let bat = int_bat(n, 1_000_000, 2);
        let cand = select(&bat, None, CmpOp::Lt, &Value::Int(500_000)).unwrap();
        g.bench_with_input(
            BenchmarkId::new("late_reconstruction", n),
            &(&bat, &cand),
            |b, (bat, cand)| b.iter(|| fetch(black_box(bat), black_box(cand))),
        );
        g.bench_with_input(BenchmarkId::new("dense_copy", n), &bat, |b, bat| {
            b.iter(|| fetch(black_box(bat), &Candidates::all(bat)))
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_join");
    for &n in &[4096usize, 65_536] {
        let probe = int_bat(n, 1000, 3);
        let build = int_bat(1000, 1000, 4);
        g.bench_with_input(
            BenchmarkId::new("stream_x_dim", n),
            &(&probe, &build),
            |b, (probe, build)| {
                b.iter(|| hash_join(black_box(probe), black_box(build), None, None))
            },
        );
    }
    g.finish();
}

fn bench_group_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_aggregate");
    for &n in &[65_536usize, 1_048_576] {
        for &card in &[8i64, 1024] {
            let keys = int_bat(n, card, 5);
            let vals = int_bat(n, 1_000_000, 6);
            g.bench_with_input(
                BenchmarkId::new(format!("group_sum_card{card}"), n),
                &(&keys, &vals),
                |b, (keys, vals)| {
                    b.iter(|| {
                        let map = group_by(&[black_box(keys)], None).unwrap();
                        datacell_algebra::aggregate_groups(
                            AggKind::Sum,
                            black_box(vals),
                            &map,
                            None,
                        )
                        .unwrap()
                    })
                },
            );
        }
        let vals = int_bat(n, 1_000_000, 7);
        g.bench_with_input(BenchmarkId::new("global_sum", n), &vals, |b, vals| {
            b.iter(|| aggregate_all(AggKind::Sum, black_box(vals), None))
        });
    }
    g.finish();
}

criterion_group!(
    name = operators;
    config = Criterion::default().sample_size(20);
    targets = bench_select, bench_fetch, bench_join, bench_group_aggregate
);
criterion_main!(operators);
