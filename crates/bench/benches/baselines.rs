//! Criterion companion to E8a: the same optimized plan executed by the
//! bulk columnar executor vs. the tuple-at-a-time Volcano interpreter.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datacell_baseline::{execute_volcano, RowSources};
use datacell_plan::{execute, Binder, ExecSources, LogicalPlan};
use datacell_storage::{Catalog, Chunk, DataType, Row, Schema, Value};
use datacell_workload::{rows_to_chunk, SensorConfig, SensorStream};

const QUERY: &str =
    "SELECT sensor, COUNT(*), AVG(temp) FROM s WHERE temp > 16.0 GROUP BY sensor";

fn plan_and_data(n: usize) -> (LogicalPlan, Chunk, Vec<Row>) {
    let cat = Catalog::new();
    cat.create_stream(
        "s",
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("sensor", DataType::Int),
            ("temp", DataType::Float),
        ]),
    )
    .unwrap();
    let stmt = match datacell_sql::parse_statement(QUERY).unwrap() {
        datacell_sql::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let bound = Binder::new(&cat).bind_select(&stmt).unwrap();
    let plan = datacell_plan::optimize(bound.plan);
    let mut gen = SensorStream::new(SensorConfig::default());
    let rows = gen.take_rows(n);
    let chunk = rows_to_chunk(&SensorStream::schema(), &rows).unwrap();
    (plan, chunk, rows)
}

fn bench_executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_model");
    for &n in &[4096usize, 65_536] {
        let (plan, chunk, rows) = plan_and_data(n);

        let mut col_sources = ExecSources::new();
        col_sources.bind("s", chunk);
        g.bench_with_input(BenchmarkId::new("bulk_columnar", n), &(), |b, _| {
            b.iter(|| execute(black_box(&plan), black_box(&col_sources)).unwrap())
        });

        let mut row_sources = RowSources::new();
        row_sources.insert("s".into(), rows);
        g.bench_with_input(BenchmarkId::new("volcano_rows", n), &(), |b, _| {
            b.iter(|| execute_volcano(black_box(&plan), black_box(&row_sources)).unwrap())
        });
    }
    g.finish();
}

fn bench_value_boundary(c: &mut Criterion) {
    // The cost of crossing the row⇄column boundary itself.
    let mut g = c.benchmark_group("ingest_boundary");
    for &n in &[4096usize, 65_536] {
        let mut gen = SensorStream::new(SensorConfig::default());
        let rows = gen.take_rows(n);
        let schema = SensorStream::schema();
        g.bench_with_input(BenchmarkId::new("rows_to_chunk", n), &(), |b, _| {
            b.iter(|| rows_to_chunk(black_box(&schema), black_box(&rows)).unwrap())
        });
    }
    let _ = Value::Int(0); // keep import used under cfg permutations
    g.finish();
}

criterion_group!(
    name = baselines;
    config = Criterion::default().sample_size(15);
    targets = bench_executors, bench_value_boundary
);
criterion_main!(baselines);
