//! Criterion companion to E2/E3: steady-state cost of one slide in each
//! execution mode, at a fixed window/slide shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacell_core::{DataCell, ExecutionMode};
use datacell_workload::{SensorConfig, SensorStream};

const WINDOW: usize = 16_384;
const SLIDE: usize = 1024;

struct Rig {
    cell: DataCell,
    gen: SensorStream,
    q: u64,
}

fn rig(mode: ExecutionMode) -> Rig {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    let q = cell
        .register_query_with_mode(
            &format!(
                "SELECT sensor, SUM(temp), COUNT(*) FROM sensors \
                 [ROWS {WINDOW} SLIDE {SLIDE}] GROUP BY sensor"
            ),
            mode,
        )
        .unwrap();
    let mut gen = SensorStream::new(SensorConfig { sensors: 64, ..Default::default() });
    cell.push_rows("sensors", &gen.take_rows(WINDOW)).unwrap();
    cell.run_until_idle().unwrap();
    let _ = cell.take_results(q);
    Rig { cell, gen, q }
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_slide");
    for (label, mode) in [
        ("reevaluate", ExecutionMode::Reevaluate),
        ("incremental", ExecutionMode::Incremental),
    ] {
        let mut r = rig(mode);
        g.bench_with_input(
            BenchmarkId::new(label, format!("w{WINDOW}_s{SLIDE}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let rows = r.gen.take_rows(SLIDE);
                    r.cell.push_rows("sensors", &rows).unwrap();
                    r.cell.run_until_idle().unwrap();
                    r.cell.take_results(r.q).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = window_modes;
    config = Criterion::default().sample_size(30);
    targets = bench_modes
);
criterion_main!(window_modes);
