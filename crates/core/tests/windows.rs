//! Window semantics and execution-mode equivalence tests.
//!
//! The central correctness claim of the reproduction: the paper's two
//! execution modes ("queries are evaluated fully every time new relevant
//! data arrive" vs. incremental basic-window processing) must produce
//! identical results, slide for slide.

use datacell_core::{DataCell, DataCellConfig, ExecutionMode};
use datacell_storage::{Chunk, Row, Value};

fn setup() -> DataCell {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
    cell.execute("CREATE TABLE dim (k BIGINT, w BIGINT)").unwrap();
    cell.execute("INSERT INTO dim VALUES (0, 100), (1, 200), (2, 300)").unwrap();
    cell
}

fn rows(n: usize, start: i64) -> Vec<Row> {
    (0..n as i64)
        .map(|i| {
            let t = start + i;
            vec![Value::Int(t), Value::Int(t % 3), Value::Int(t * 10)]
        })
        .collect()
}

/// Feed the same stream to the same query in both modes; results must be
/// identical chunk-for-chunk.
fn assert_modes_agree(sql: &str, batches: &[Vec<Row>]) {
    let mut outputs: Vec<Vec<Chunk>> = Vec::new();
    for mode in [ExecutionMode::Reevaluate, ExecutionMode::Incremental] {
        let mut cell = setup();
        let q = cell.register_query_with_mode(sql, mode).unwrap();
        let mut got = Vec::new();
        for batch in batches {
            cell.push_rows("s", batch).unwrap();
            cell.run_until_idle().unwrap();
            got.extend(cell.take_results(q).unwrap());
        }
        outputs.push(got);
    }
    let (reeval, incr) = (&outputs[0], &outputs[1]);
    // Incremental mode stays silent while the first window fills; align on
    // the common tail.
    assert!(
        reeval.len() >= incr.len(),
        "incremental produced more outputs ({}) than re-evaluation ({})",
        incr.len(),
        reeval.len()
    );
    let offset = reeval.len() - incr.len();
    for (i, (a, b)) in reeval[offset..].iter().zip(incr).enumerate() {
        assert_eq!(
            sorted_rows(a),
            sorted_rows(b),
            "slide {i} differs for {sql}\nreeval: {a:?}\nincr: {b:?}"
        );
    }
    assert!(!incr.is_empty(), "incremental never produced output for {sql}");
}

fn sorted_rows(c: &Chunk) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> =
        c.rows().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
    rows.sort();
    rows
}

#[test]
fn unwindowed_count_consumes_once() {
    let mut cell = setup();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.push_rows("s", &rows(5, 0)).unwrap();
    cell.run_until_idle().unwrap();
    cell.push_rows("s", &rows(3, 5)).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].row(0), vec![Value::Int(5)]);
    assert_eq!(out[1].row(0), vec![Value::Int(3)]);
}

#[test]
fn tumbling_window_fires_per_window() {
    let mut cell = setup();
    let q = cell.register_query("SELECT SUM(v) FROM s [ROWS 4]").unwrap();
    cell.push_rows("s", &rows(10, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    // two complete windows of 4; the remaining 2 tuples wait
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].row(0), vec![Value::Int((1 + 2 + 3) * 10)]);
    assert_eq!(out[1].row(0), vec![Value::Int((4 + 5 + 6 + 7) * 10)]);
}

#[test]
fn sliding_window_reevaluate_counts() {
    let mut cell = setup();
    let q = cell
        .register_query_with_mode(
            "SELECT COUNT(*) FROM s [ROWS 6 SLIDE 2]",
            ExecutionMode::Reevaluate,
        )
        .unwrap();
    cell.push_rows("s", &rows(10, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    // windows end at 2,4,6,8,10 (slide 2); early windows are partial
    assert_eq!(out.len(), 5);
    let counts: Vec<i64> =
        out.iter().map(|c| c.row(0)[0].as_int().unwrap()).collect();
    assert_eq!(counts, vec![2, 4, 6, 6, 6]);
}

#[test]
fn modes_agree_global_aggregate() {
    assert_modes_agree(
        "SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM s [ROWS 8 SLIDE 2]",
        &[rows(8, 0), rows(6, 8), rows(7, 14), rows(3, 21)],
    );
}

#[test]
fn modes_agree_grouped_aggregate() {
    assert_modes_agree(
        "SELECT k, SUM(v), COUNT(*) FROM s [ROWS 9 SLIDE 3] GROUP BY k",
        &[rows(9, 0), rows(5, 9), rows(10, 14)],
    );
}

#[test]
fn modes_agree_with_filter_and_having() {
    assert_modes_agree(
        "SELECT k, SUM(v) FROM s [ROWS 12 SLIDE 4] WHERE v % 20 = 0 GROUP BY k HAVING COUNT(*) > 1",
        &[rows(12, 0), rows(12, 12), rows(4, 24)],
    );
}

#[test]
fn modes_agree_stream_table_join() {
    assert_modes_agree(
        "SELECT dim.w, SUM(s.v) FROM s [ROWS 8 SLIDE 4] JOIN dim ON s.k = dim.k GROUP BY dim.w",
        &[rows(8, 0), rows(8, 8), rows(4, 16)],
    );
}

#[test]
fn modes_agree_range_window() {
    assert_modes_agree(
        "SELECT COUNT(*), SUM(v) FROM s [RANGE 6 ON ts SLIDE 2]",
        &[rows(8, 0), rows(6, 8), rows(8, 14)],
    );
}

#[test]
fn modes_agree_two_stream_join() {
    let sql = "SELECT COUNT(*) FROM s [ROWS 6 SLIDE 2] JOIN r [ROWS 6 SLIDE 2] ON s.k = r.k";
    let mut outputs: Vec<Vec<Chunk>> = Vec::new();
    for mode in [ExecutionMode::Reevaluate, ExecutionMode::Incremental] {
        let mut cell = setup();
        cell.execute("CREATE STREAM r (ts BIGINT, k BIGINT)").unwrap();
        let q = cell.register_query_with_mode(sql, mode).unwrap();
        let mut got = Vec::new();
        for start in [0i64, 6, 12] {
            cell.push_rows("s", &rows(6, start)).unwrap();
            let r_rows: Vec<Row> = (0..6)
                .map(|i| vec![Value::Int(start + i), Value::Int((start + i) % 3)])
                .collect();
            cell.push_rows("r", &r_rows).unwrap();
            cell.run_until_idle().unwrap();
            got.extend(cell.take_results(q).unwrap());
        }
        outputs.push(got);
    }
    let (reeval, incr) = (&outputs[0], &outputs[1]);
    assert!(!incr.is_empty());
    let offset = reeval.len().saturating_sub(incr.len());
    for (a, b) in reeval[offset..].iter().zip(incr) {
        assert_eq!(sorted_rows(a), sorted_rows(b), "two-stream join modes disagree");
    }
}

#[test]
fn incremental_falls_back_when_not_divisible() {
    let mut cell = setup();
    let q = cell
        .register_query_with_mode(
            "SELECT SUM(v) FROM s [ROWS 7 SLIDE 3]",
            ExecutionMode::Incremental,
        )
        .unwrap();
    assert_eq!(cell.query_mode(q).unwrap(), ExecutionMode::Reevaluate);
    let text = cell.explain(q).unwrap();
    assert!(text.contains("falling back"), "{text}");
}

#[test]
fn incremental_falls_back_for_projection_queries() {
    let mut cell = setup();
    let q = cell
        .register_query_with_mode(
            "SELECT v FROM s [ROWS 4 SLIDE 2] WHERE v > 20",
            ExecutionMode::Incremental,
        )
        .unwrap();
    assert_eq!(cell.query_mode(q).unwrap(), ExecutionMode::Reevaluate);
}

#[test]
fn pause_and_resume_query() {
    let mut cell = setup();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.set_query_paused(q, true).unwrap();
    cell.push_rows("s", &rows(4, 0)).unwrap();
    assert_eq!(cell.run_until_idle().unwrap(), 0);
    assert!(cell.take_results(q).unwrap().is_empty());
    cell.set_query_paused(q, false).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].row(0), vec![Value::Int(4)]);
}

#[test]
fn pause_stream_blocks_ingestion() {
    let mut cell = setup();
    cell.set_stream_paused("s", true).unwrap();
    assert_eq!(cell.push_rows("s", &rows(4, 0)).unwrap(), 0);
    cell.set_stream_paused("s", false).unwrap();
    assert_eq!(cell.push_rows("s", &rows(4, 0)).unwrap(), 4);
}

#[test]
fn basket_retirement_after_consumption() {
    let mut cell = setup();
    let _q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.push_rows("s", &rows(100, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let stats = cell.stats();
    let s = stats.baskets.iter().find(|b| b.name == "s").unwrap();
    assert_eq!(s.arrived, 100);
    assert_eq!(s.retired, 100, "consumed tuples must be dropped from the basket");
    assert_eq!(s.buffered, 0);
}

#[test]
fn windowed_query_retains_window_tail() {
    let mut cell = setup();
    let _q = cell.register_query("SELECT SUM(v) FROM s [ROWS 4 SLIDE 2]").unwrap();
    cell.push_rows("s", &rows(10, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let stats = cell.stats();
    let s = stats.baskets.iter().find(|b| b.name == "s").unwrap();
    // The last window [6,10) may still be needed; tuples before OID 6 are not.
    assert!(s.retired >= 6, "retired only {}", s.retired);
    assert!(s.buffered <= 4);
}

#[test]
fn multiple_queries_share_one_basket() {
    let mut cell = setup();
    let q1 = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let q2 = cell.register_query("SELECT SUM(v) FROM s [ROWS 4]").unwrap();
    cell.push_rows("s", &rows(8, 0)).unwrap();
    cell.run_until_idle().unwrap();
    assert_eq!(cell.take_results(q1).unwrap().len(), 1);
    assert_eq!(cell.take_results(q2).unwrap().len(), 2);
    // retirement respects the slowest consumer
    let stats = cell.stats();
    let s = stats.baskets.iter().find(|b| b.name == "s").unwrap();
    assert_eq!(s.retired, 8);
}

#[test]
fn take_results_unknown_query_errors() {
    let mut cell = setup();
    assert!(cell.take_results(99).is_err());
}

#[test]
fn emitter_receives_results() {
    let mut cell = setup();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let emitter = cell.subscribe(q).unwrap();
    cell.push_rows("s", &rows(3, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let chunks = emitter.drain();
    assert_eq!(chunks.len(), 1);
    assert_eq!(chunks[0].row(0), vec![Value::Int(3)]);
}

#[test]
fn firing_threshold_batches_arrivals() {
    let mut cell = DataCell::new(DataCellConfig {
        firing_threshold: 5,
        ..Default::default()
    });
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.push_rows("s", &[vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
    assert_eq!(cell.run_until_idle().unwrap(), 0, "below threshold: no firing");
    cell.push_rows(
        "s",
        &[vec![Value::Int(3)], vec![Value::Int(4)], vec![Value::Int(5)]],
    )
    .unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].row(0), vec![Value::Int(5)]);
}

#[test]
fn one_time_query_over_stream_contents() {
    let mut cell = setup();
    cell.push_rows("s", &rows(5, 0)).unwrap();
    match cell.execute("SELECT COUNT(*) FROM s").unwrap() {
        datacell_core::ExecOutcome::Rows { chunk, .. } => {
            assert_eq!(chunk.row(0), vec![Value::Int(5)]);
        }
        other => panic!("expected rows, got {other:?}"),
    }
    // non-consuming: basket still holds the tuples
    assert_eq!(cell.stats().baskets.iter().find(|b| b.name == "s").unwrap().buffered, 5);
}

#[test]
fn hybrid_one_time_join_stream_and_table() {
    let mut cell = setup();
    cell.push_rows("s", &rows(6, 0)).unwrap();
    match cell
        .execute("SELECT SUM(dim.w) FROM s JOIN dim ON s.k = dim.k")
        .unwrap()
    {
        datacell_core::ExecOutcome::Rows { chunk, .. } => {
            // k cycle 0,1,2 → w cycle 100,200,300, twice
            assert_eq!(chunk.row(0), vec![Value::Int(1200)]);
        }
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn ablation_no_partial_cache_same_results() {
    let sql = "SELECT k, SUM(v) FROM s [ROWS 8 SLIDE 2] GROUP BY k";
    let batches = vec![rows(8, 0), rows(8, 8)];
    let mut with_cache = Vec::new();
    let mut without_cache = Vec::new();
    for (cache, sink) in [(true, &mut with_cache), (false, &mut without_cache)] {
        let mut cell = DataCell::new(DataCellConfig {
            cache_partials: cache,
            ..DataCellConfig::incremental()
        });
        cell.execute("CREATE STREAM s (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
        let q = cell.register_query(sql).unwrap();
        for b in &batches {
            cell.push_rows("s", b).unwrap();
            cell.run_until_idle().unwrap();
            sink.extend(cell.take_results(q).unwrap());
        }
    }
    assert_eq!(with_cache.len(), without_cache.len());
    for (a, b) in with_cache.iter().zip(&without_cache) {
        assert_eq!(sorted_rows(a), sorted_rows(b));
    }
}

#[test]
fn network_and_stats_render() {
    let mut cell = setup();
    let q1 = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let _q2 = cell
        .register_query("SELECT dim.w, COUNT(*) FROM s [ROWS 4] JOIN dim ON s.k = dim.k GROUP BY dim.w")
        .unwrap();
    let net = cell.network();
    assert_eq!(net.consumers_of("s").len(), 2);
    let text = net.describe();
    assert!(text.contains("[stream] s"), "{text}");
    assert!(text.contains("[table] dim"), "{text}");
    cell.push_rows("s", &rows(4, 0)).unwrap();
    cell.run_until_idle().unwrap();
    let stats = cell.stats();
    assert!(stats.render().contains(&format!("q{q1}")));
}

#[test]
fn deregister_removes_query() {
    let mut cell = setup();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.deregister_query(q).unwrap();
    assert!(cell.deregister_query(q).is_err());
    cell.push_rows("s", &rows(3, 0)).unwrap();
    assert_eq!(cell.run_until_idle().unwrap(), 0);
}

#[test]
fn explain_shows_mode_transformation() {
    let mut cell = setup();
    let q = cell
        .register_query_with_mode(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 10] GROUP BY k",
            ExecutionMode::Incremental,
        )
        .unwrap();
    let text = cell.explain(q).unwrap();
    assert!(text.contains("optimized plan"), "{text}");
    assert!(text.contains("incremental split"), "{text}");
    assert!(text.contains("effective mode: incremental"), "{text}");
}
