//! Runtime resilience: admission control shedding and degraded-durability
//! escalation, driven end-to-end through the engine facade with
//! deterministic fault plans.

use datacell_core::{
    DataCell, DataCellConfig, EngineError, FaultPlan, Faults, MemoryBudget, RetryPolicy,
    ShedPolicy,
};
use datacell_storage::Row;

fn rows(n: usize) -> Vec<Row> {
    (0..n).map(|i| vec![(i as i64).into(), (i as i64).into()]).collect()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("datacell-resilience-{tag}-{nanos}"))
}

#[test]
fn reject_policy_sheds_with_retryable_error() {
    let config = DataCellConfig {
        memory_budget: Some(MemoryBudget::pinned_bytes(256, ShedPolicy::Reject)),
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    // No query consumes, so nothing retires: the budget fills.
    while cell.push_rows("s", &rows(16)).is_ok() {}
    let err = cell.push_rows("s", &rows(1)).unwrap_err();
    assert!(matches!(err, EngineError::Overloaded { .. }));
    let stats = cell.stats();
    assert!(stats.admission_rejected >= 2);
    assert!(stats.render().contains("admission:"));
}

#[test]
fn pause_receptors_resumes_below_watermark() {
    let config = DataCellConfig {
        memory_budget: Some(MemoryBudget::pinned_bytes(2048, ShedPolicy::PauseReceptors)),
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    // Fill past the ceiling without running the scheduler.
    while cell.push_rows("s", &rows(32)).is_ok() {}
    assert!(cell.ingest_paused());
    assert!(matches!(
        cell.push_rows("s", &rows(1)),
        Err(EngineError::Overloaded { .. })
    ));
    // Consuming the backlog retires (and compacts) the basket...
    cell.run_until_idle().unwrap();
    assert!(cell.pinned_bytes() <= 2048);
    // ...so the next push crosses the low watermark and resumes ingest.
    assert_eq!(cell.push_rows("s", &rows(1)).unwrap(), 1);
    assert!(!cell.ingest_paused());
}

#[test]
fn alloc_budget_fault_forces_drop_oldest_shed() {
    let config = DataCellConfig {
        memory_budget: Some(MemoryBudget::pinned_bytes(usize::MAX >> 1, ShedPolicy::DropOldest)),
        // Far under budget; the third admission check is forced over.
        faults: Faults::enabled(FaultPlan::parse("seed=7;alloc_budget:nth=3:eio").unwrap()),
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let em = cell.subscribe(q).unwrap();
    // Two pushes build a two-chunk backlog in the subscriber queue and
    // the internal pending buffer.
    for _ in 0..2 {
        cell.push_rows("s", &rows(4)).unwrap();
        cell.run_until_idle().unwrap();
    }
    // The forced over-budget push is still admitted — the oldest half of
    // each backlog is shed to pay for it.
    assert_eq!(cell.push_rows("s", &rows(1)).unwrap(), 1);
    let stats = cell.stats();
    assert!(stats.admission_dropped_chunks >= 2);
    assert_eq!(em.dropped(), 1);
    assert_eq!(em.drain().len(), 1, "newest chunk survives the shed");
}

#[test]
fn alloc_budget_fault_without_budget_rejects_once() {
    let config = DataCellConfig {
        faults: Faults::enabled(FaultPlan::parse("seed=7;alloc_budget:nth=1:eio").unwrap()),
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    assert!(matches!(
        cell.push_rows("s", &rows(1)),
        Err(EngineError::Overloaded { retry_after_ms: 50 })
    ));
    assert_eq!(cell.push_rows("s", &rows(1)).unwrap(), 1, "nth=1 fires once");
}

#[test]
fn transient_wal_fault_is_absorbed_by_retries() {
    let dir = tmpdir("retry");
    let mut config = DataCellConfig::durable(&dir);
    // Default retry policy; one transient EIO on the second append.
    config.faults =
        Faults::enabled(FaultPlan::parse("seed=3;wal_append:nth=2:eio").unwrap());
    let mut cell = DataCell::open(config).unwrap();
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    assert_eq!(cell.push_rows("s", &rows(2)).unwrap(), 2);
    let wal = cell.wal_stats().unwrap();
    assert_eq!(wal.io_retries, 1, "the EIO was absorbed");
    assert_eq!(wal.io_gave_up, 0);
    let stats = cell.stats();
    assert_eq!(stats.degraded_streams, 0);
    assert!(stats.baskets.iter().all(|b| !b.degraded));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_wal_fault_escalates_to_degraded() {
    let dir = tmpdir("degrade");
    let mut config = DataCellConfig::durable(&dir);
    config.wal.as_mut().unwrap().retry = RetryPolicy::none();
    // Call #1 is the CREATE STREAM meta append; call #2 is the first
    // segment append — ENOSPC is persistent, so the basket degrades.
    config.faults =
        Faults::enabled(FaultPlan::parse("seed=3;wal_append:nth=2:enospc").unwrap());
    let mut cell = DataCell::open(config).unwrap();
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    assert_eq!(cell.push_rows("s", &rows(2)).unwrap(), 2, "ingest survives");
    let stats = cell.stats();
    assert_eq!(stats.degraded_streams, 1);
    assert!(stats.baskets[0].degraded);
    assert!(stats.render().contains("DEGRADED DURABILITY: 1 stream(s)"));
    let wal = cell.wal_stats().unwrap();
    assert_eq!(wal.io_gave_up, 1);
    // The degraded state is loud in METRICS, and ingest keeps flowing.
    let metrics = cell.metrics_text();
    assert!(metrics.contains("datacell_degraded_streams 1"));
    assert!(metrics.contains("datacell_wal_io_gave_up_total 1"));
    assert_eq!(cell.push_rows("s", &rows(3)).unwrap(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scheduler_stall_fault_delays_but_never_errors() {
    let config = DataCellConfig {
        faults: Faults::enabled(FaultPlan::parse("seed=9;scheduler_stall:win=1..3:stall").unwrap()),
        ..DataCellConfig::default()
    };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    cell.push_rows("s", &rows(4)).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert!(!out.is_empty(), "stalled passes still produce results");
}
