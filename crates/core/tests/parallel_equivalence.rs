//! Serial-vs-parallel equivalence: the worker-pool executor must be
//! invisible in the results. The same registered queries over the same
//! (shuffled) ingest must produce byte-identical per-query chunk sequences
//! for every worker count, and the watermark retirement protocol must
//! retire exactly what the serial scheduler retires.

use std::collections::BTreeMap;

use datacell_core::{DataCell, DataCellConfig, ExecutionMode};
use datacell_storage::{Row, Value};

/// Tiny deterministic LCG so the "shuffled" ingest interleaving is
/// reproducible without pulling in an RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const STREAMS: [&str; 4] = ["s0", "s1", "s2", "s3"];

/// A varied standing-query mix: windowed aggregation (both modes), an
/// unwindowed consume-once count, a stream-table join and a stream-stream
/// join (which fuses the partitions of its two inputs).
fn register_queries(cell: &mut DataCell) -> Vec<u64> {
    let mut qids = Vec::new();
    for s in STREAMS {
        cell.execute(&format!("CREATE STREAM {s} (ts BIGINT, k BIGINT, v BIGINT)"))
            .unwrap();
    }
    cell.execute("CREATE TABLE dim (k BIGINT, w BIGINT)").unwrap();
    cell.execute("INSERT INTO dim VALUES (0, 100), (1, 200), (2, 300)").unwrap();
    let reg = |cell: &mut DataCell, sql: &str, mode| {
        cell.register_query_with_mode(sql, mode).unwrap()
    };
    qids.push(reg(
        cell,
        "SELECT k, COUNT(*), SUM(v) FROM s0 [ROWS 8 SLIDE 4] GROUP BY k",
        ExecutionMode::Incremental,
    ));
    qids.push(reg(
        cell,
        "SELECT k, SUM(v) FROM s1 [ROWS 6 SLIDE 2] GROUP BY k",
        ExecutionMode::Reevaluate,
    ));
    qids.push(reg(cell, "SELECT COUNT(*), SUM(v) FROM s2", ExecutionMode::Reevaluate));
    qids.push(reg(
        cell,
        "SELECT dim.w, SUM(s3.v) FROM s3 [ROWS 8 SLIDE 4] JOIN dim ON s3.k = dim.k \
         GROUP BY dim.w",
        ExecutionMode::Incremental,
    ));
    qids.push(reg(
        cell,
        "SELECT COUNT(*) FROM s0 [ROWS 6 SLIDE 3] JOIN s1 [ROWS 6 SLIDE 3] \
         ON s0.k = s1.k",
        ExecutionMode::Incremental,
    ));
    qids.push(reg(
        cell,
        "SELECT k, COUNT(*) FROM s2 [ROWS 10 SLIDE 5] GROUP BY k",
        ExecutionMode::Incremental,
    ));
    qids
}

fn row(t: i64) -> Row {
    vec![Value::Int(t), Value::Int(t % 3), Value::Int(t * 7 % 101)]
}

/// Run the whole workload at a given worker count; returns per-query chunk
/// renderings plus (arrived, retired) per basket.
#[allow(clippy::type_complexity)]
fn run_workload(
    workers: usize,
) -> (BTreeMap<u64, Vec<Vec<String>>>, BTreeMap<String, (u64, u64)>) {
    let mut cell = DataCell::new(DataCellConfig { workers, ..Default::default() });
    let qids = register_queries(&mut cell);
    let mut outputs: BTreeMap<u64, Vec<Vec<String>>> =
        qids.iter().map(|q| (*q, Vec::new())).collect();

    // Shuffled ingest: each round pushes a pseudo-random small batch to a
    // pseudo-random stream, with periodic run_until_idle calls — the same
    // sequence for every worker count.
    let mut lcg = Lcg(0xDA7ACE11);
    let mut next_t: [i64; STREAMS.len()] = [0; STREAMS.len()];
    for round in 0..200 {
        let si = (lcg.next() % STREAMS.len() as u64) as usize;
        let n = 1 + (lcg.next() % 5) as usize;
        let rows: Vec<Row> = (0..n as i64).map(|i| row(next_t[si] + i)).collect();
        next_t[si] += n as i64;
        cell.push_rows(STREAMS[si], &rows).unwrap();
        if round % 3 == 0 {
            cell.run_until_idle().unwrap();
            for q in &qids {
                for chunk in cell.take_results(*q).unwrap() {
                    outputs.get_mut(q).unwrap().push(
                        chunk
                            .rows()
                            .map(|r| {
                                r.iter().map(Value::to_string).collect::<Vec<_>>().join(",")
                            })
                            .collect(),
                    );
                }
            }
        }
    }
    cell.run_until_idle().unwrap();
    for q in &qids {
        for chunk in cell.take_results(*q).unwrap() {
            outputs.get_mut(q).unwrap().push(
                chunk
                    .rows()
                    .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join(","))
                    .collect(),
            );
        }
    }
    let baskets = cell
        .stats()
        .baskets
        .iter()
        .map(|b| (b.name.clone(), (b.arrived, b.retired)))
        .collect();
    (outputs, baskets)
}

/// The central claim: worker count never changes any query's output.
#[test]
fn workers_1_2_4_byte_identical() {
    let (serial, serial_baskets) = run_workload(1);
    assert!(
        serial.values().all(|chunks| !chunks.is_empty()),
        "every query must produce output for the comparison to mean anything"
    );
    for workers in [2, 4] {
        let (parallel, parallel_baskets) = run_workload(workers);
        assert_eq!(
            serial, parallel,
            "per-query output diverged between workers=1 and workers={workers}"
        );
        assert_eq!(
            serial_baskets, parallel_baskets,
            "watermark retirement diverged between workers=1 and workers={workers}"
        );
    }
}

/// Partition analysis: queries sharing a basket fuse; the stream-stream
/// join over s0 and s1 must pull both baskets' consumers into one
/// partition, while s2 and s3 stay independent.
#[test]
fn partitions_follow_shared_baskets() {
    let mut cell = DataCell::default();
    let qids = register_queries(&mut cell);
    let state = cell.net_state();
    // q1(s0), q2(s1) and q5(s0⋈s1) in one partition; q3(s2) + q6(s2);
    // q4(s3) alone.
    assert_eq!(
        state.partitions,
        vec![
            vec![qids[0], qids[1], qids[4]],
            vec![qids[2], qids[5]],
            vec![qids[3]],
        ]
    );
    assert_eq!(state.transitions.len(), qids.len());
    assert!(state.transitions.iter().all(|(_, enabled)| !enabled));
    assert_eq!(cell.stats().partitions, 3);

    // Deregistering the join splits the fused partition back apart.
    cell.deregister_query(qids[4]).unwrap();
    assert_eq!(
        cell.net_state().partitions,
        vec![vec![qids[0]], vec![qids[1]], vec![qids[2], qids[5]], vec![qids[3]]]
    );
}

/// More workers than partitions must degrade gracefully (extra workers
/// idle), and a parallel engine with a single partition takes the serial
/// path — results still identical.
#[test]
fn worker_surplus_is_harmless() {
    let run = |workers: usize| {
        let mut cell = DataCell::new(DataCellConfig { workers, ..Default::default() });
        cell.execute("CREATE STREAM lone (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
        let q = cell
            .register_query_with_mode(
                "SELECT k, SUM(v) FROM lone [ROWS 4 SLIDE 2] GROUP BY k",
                ExecutionMode::Incremental,
            )
            .unwrap();
        let rows: Vec<Row> = (0..20).map(row).collect();
        cell.push_rows("lone", &rows).unwrap();
        cell.run_until_idle().unwrap();
        cell.take_results(q)
            .unwrap()
            .iter()
            .flat_map(|c| c.rows().map(|r| format!("{r:?}")).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(8));
}

/// The watermark can move without any factory firing — e.g. when a lagging
/// consumer is deregistered. An idle scheduling round must still retire,
/// in parallel mode exactly like in serial mode.
#[test]
fn idle_rounds_retire_after_deregistration() {
    let run = |workers: usize| {
        let mut cell = DataCell::new(DataCellConfig { workers, ..Default::default() });
        cell.execute("CREATE STREAM a (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
        cell.execute("CREATE STREAM b (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
        let lagging = cell.register_query("SELECT COUNT(*) FROM a").unwrap();
        let _other = cell.register_query("SELECT COUNT(*) FROM b").unwrap();
        // Windowed consumer whose cursor trails the unwindowed one.
        let _windowed = cell
            .register_query("SELECT k, COUNT(*) FROM a [ROWS 8 SLIDE 4] GROUP BY k")
            .unwrap();
        cell.set_query_paused(lagging, true).unwrap();
        let rows: Vec<Row> = (0..10).map(row).collect();
        cell.push_rows("a", &rows).unwrap();
        cell.run_until_idle().unwrap();
        let before = cell.stats();
        let retired =
            |s: &datacell_core::EngineStats, n: &str| {
                s.baskets.iter().find(|b| b.name == n).unwrap().retired
            };
        // The paused query pins basket a's watermark at 0.
        assert_eq!(retired(&before, "a"), 0, "workers={workers}");
        // Dropping it frees the watermark; the next (idle) rounds must
        // retire without any firing.
        cell.deregister_query(lagging).unwrap();
        cell.run_until_idle().unwrap();
        retired(&cell.stats(), "a")
    };
    let serial = run(1);
    assert!(serial > 0, "deregistration must unblock retirement");
    assert_eq!(serial, run(4));
}

/// Pause/resume and paused-query retirement still behave under the
/// parallel executor: a paused query pins its basket's watermark.
#[test]
fn paused_query_pins_watermark_in_parallel_mode() {
    let mut cell = DataCell::new(DataCellConfig { workers: 4, ..Default::default() });
    cell.execute("CREATE STREAM a (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
    cell.execute("CREATE STREAM b (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
    let qa = cell.register_query("SELECT COUNT(*) FROM a").unwrap();
    let _qb = cell.register_query("SELECT COUNT(*) FROM b").unwrap();
    cell.set_query_paused(qa, true).unwrap();
    let rows: Vec<Row> = (0..10).map(row).collect();
    cell.push_rows("a", &rows).unwrap();
    cell.push_rows("b", &rows).unwrap();
    cell.run_until_idle().unwrap();
    let stats = cell.stats();
    let get = |name: &str| stats.baskets.iter().find(|s| s.name == name).unwrap();
    // b was consumed and retired; a is pinned by its paused consumer.
    assert_eq!(get("b").retired, 10);
    assert_eq!(get("a").retired, 0);
    assert_eq!(get("a").buffered, 10);
    // Resuming drains the backlog.
    cell.set_query_paused(qa, false).unwrap();
    cell.run_until_idle().unwrap();
    assert_eq!(cell.take_results(qa).unwrap().len(), 1);
    assert_eq!(cell.stats().baskets.iter().find(|s| s.name == "a").unwrap().retired, 10);
}
