//! Shared-execution equivalence: common-subplan factoring must be
//! invisible in the results. The same overlapping query mix over the same
//! ingest must produce byte-identical per-query chunk sequences with
//! `shared_execution` on and off, at every worker count, and across a WAL
//! crash/recovery boundary. A randomized REGISTER/DEREGISTER churn test
//! checks that refcounted shared nodes never leak and never disturb
//! surviving queries.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use datacell_core::{DataCell, DataCellConfig, ExecutionMode, SyncPolicy, WalConfig};
use datacell_storage::{Row, Value};
use proptest::prelude::*;

/// Deterministic LCG (same generator as the parallel-equivalence suite) so
/// the ingest interleaving is reproducible without an RNG crate at runtime.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn row(t: i64) -> Row {
    vec![Value::Int(t), Value::Int(t % 5), Value::Int(t * 7 % 101)]
}

/// An overlapping standing-query mix over one stream: two *identical*
/// queries (share window+select+agg), two sharing only the predicate
/// (different aggregates), one sharing only the window (different
/// threshold), and one disjoint re-evaluation query as a control.
fn register_overlapping(cell: &mut DataCell) -> Vec<u64> {
    cell.execute("CREATE STREAM t (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
    let inc = |cell: &mut DataCell, sql: &str| {
        cell.register_query_with_mode(sql, ExecutionMode::Incremental).unwrap()
    };
    let mut qids = Vec::new();
    // Identical pair: full window → select → group-agg sharing.
    for _ in 0..2 {
        qids.push(inc(
            cell,
            "SELECT k, COUNT(*), SUM(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40 GROUP BY k",
        ));
    }
    // Shared-predicate pair: same window + WHERE, different aggregates.
    qids.push(inc(cell, "SELECT k, MIN(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40 GROUP BY k"));
    qids.push(inc(cell, "SELECT k, MAX(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40 GROUP BY k"));
    // Window-only sharing: different threshold.
    qids.push(inc(cell, "SELECT COUNT(*), SUM(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 70"));
    // Disjoint control on its own window shape, re-evaluation mode.
    qids.push(
        cell.register_query_with_mode(
            "SELECT k, SUM(v) FROM t [ROWS 6 SLIDE 3] GROUP BY k",
            ExecutionMode::Reevaluate,
        )
        .unwrap(),
    );
    qids
}

fn drain(cell: &mut DataCell, qids: &[u64], outputs: &mut BTreeMap<u64, Vec<String>>) {
    for q in qids {
        for chunk in cell.take_results(*q).unwrap() {
            for r in chunk.rows() {
                outputs
                    .get_mut(q)
                    .unwrap()
                    .push(r.iter().map(Value::to_string).collect::<Vec<_>>().join(","));
            }
        }
    }
}

fn run_workload(shared: bool, workers: usize) -> (BTreeMap<u64, Vec<String>>, u64) {
    let mut cell = DataCell::new(DataCellConfig {
        shared_execution: shared,
        workers,
        ..Default::default()
    });
    let qids = register_overlapping(&mut cell);
    let mut outputs: BTreeMap<u64, Vec<String>> =
        qids.iter().map(|q| (*q, Vec::new())).collect();
    let mut lcg = Lcg(0x5EED);
    let mut t = 0i64;
    for round in 0..120 {
        let n = 1 + (lcg.next() % 6) as i64;
        let rows: Vec<Row> = (0..n).map(|i| row(t + i)).collect();
        t += n;
        cell.push_rows("t", &rows).unwrap();
        if round % 4 == 0 {
            cell.run_until_idle().unwrap();
            drain(&mut cell, &qids, &mut outputs);
        }
    }
    cell.run_until_idle().unwrap();
    drain(&mut cell, &qids, &mut outputs);
    (outputs, cell.stats().shared_hits)
}

/// The central claim: sharing never changes any query's output, at any
/// worker count — and with sharing on, evaluations are actually saved.
#[test]
fn sharing_on_off_byte_identical_at_workers_1_2_4() {
    let (baseline, _) = run_workload(false, 1);
    assert!(
        baseline.values().all(|rows| !rows.is_empty()),
        "every query must produce output for the comparison to mean anything"
    );
    for workers in [1, 2, 4] {
        let (off, off_hits) = run_workload(false, workers);
        let (on, on_hits) = run_workload(true, workers);
        assert_eq!(baseline, off, "sharing-off diverged at workers={workers}");
        assert_eq!(baseline, on, "sharing-on diverged at workers={workers}");
        assert_eq!(off_hits, 0, "sharing off must never consult the cache");
        assert!(on_hits > 0, "sharing on must save evaluations at workers={workers}");
    }
}

/// Sharing shows up in stats and EXPLAIN, and DEREGISTER reclaims nodes.
#[test]
fn sharing_is_observable_and_reclaimed() {
    let mut cell = DataCell::default();
    let qids = register_overlapping(&mut cell);
    let stats = cell.stats();
    assert!(stats.shared_nodes > 0);
    assert!(stats.shared_nodes_active > 0);

    let text = cell.explain(qids[0]).unwrap();
    assert!(text.contains("== shared subplans =="), "explain:\n{text}");
    assert!(text.contains("-> shared by 4 queries"), "explain:\n{text}"); // the WHERE v > 40 select
    assert!(text.contains("-> shared by 2 queries"), "explain:\n{text}"); // the identical agg pair

    // Deregister everything: the DAG must drain completely.
    for q in &qids {
        cell.deregister_query(*q).unwrap();
    }
    let stats = cell.stats();
    assert_eq!(stats.shared_nodes, 0, "orphaned shared nodes leaked");
    assert_eq!(stats.shared_nodes_active, 0);
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-shared-wal-{}-{n}", std::process::id()))
}

fn durable_config(dir: &PathBuf, shared: bool) -> DataCellConfig {
    DataCellConfig {
        wal: Some(WalConfig { sync: SyncPolicy::Never, ..WalConfig::at(dir) }),
        shared_execution: shared,
        ..Default::default()
    }
}

/// Run the overlapping mix with a restart after `crash_after` ingest
/// rounds (`None` = uninterrupted), returning per-query row streams.
fn run_durable(
    dir: &PathBuf,
    shared: bool,
    crash_after: Option<usize>,
) -> BTreeMap<u64, Vec<String>> {
    let mut cell = DataCell::open(durable_config(dir, shared)).unwrap();
    let qids = register_overlapping(&mut cell);
    let mut outputs: BTreeMap<u64, Vec<String>> =
        qids.iter().map(|q| (*q, Vec::new())).collect();
    let mut lcg = Lcg(0xC0FFEE);
    let mut t = 0i64;
    let mut cell = Some(cell);
    for round in 0..60 {
        if crash_after == Some(round) {
            // Crash: drop the engine (releases the WAL dir), then recover.
            drop(cell.take());
            cell = Some(DataCell::open(durable_config(dir, shared)).unwrap());
        }
        let engine = cell.as_mut().unwrap();
        let n = 1 + (lcg.next() % 6) as i64;
        let rows: Vec<Row> = (0..n).map(|i| row(t + i)).collect();
        t += n;
        engine.push_rows("t", &rows).unwrap();
        engine.run_until_idle().unwrap();
        drain(engine, &qids, &mut outputs);
    }
    outputs
}

/// Sharing must also be invisible across a WAL crash/recovery boundary:
/// recovered ring partials are rebuilt through the same fused compute
/// path, so the post-restart chunk stream matches the uninterrupted run
/// bit for bit — with sharing on and off.
#[test]
fn sharing_survives_wal_crash_recovery() {
    let reference = {
        let dir = tmpdir();
        let out = run_durable(&dir, false, None);
        std::fs::remove_dir_all(&dir).ok();
        out
    };
    assert!(reference.values().all(|rows| !rows.is_empty()));
    for (shared, crash) in [(false, Some(23)), (true, None), (true, Some(23))] {
        let dir = tmpdir();
        let out = run_durable(&dir, shared, crash);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            reference, out,
            "diverged with shared={shared} crash_after={crash:?}"
        );
    }
}

/// One churn step: register one of the candidate queries or deregister a
/// live one, driven by the proptest-generated script.
const CANDIDATES: [&str; 5] = [
    "SELECT k, COUNT(*), SUM(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40 GROUP BY k",
    "SELECT k, MIN(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40 GROUP BY k",
    "SELECT COUNT(*), SUM(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 70",
    "SELECT k, SUM(v) FROM t [ROWS 6 SLIDE 3] GROUP BY k",
    "SELECT AVG(v) FROM t [ROWS 8 SLIDE 4] WHERE v > 40",
];

/// Replay one churn script on a fresh engine. Engine-assigned query ids
/// are deterministic for a fixed script, so outputs keyed by qid align
/// between the sharing-on and sharing-off runs. Returns every query's
/// full output stream (victims included — drained before deregistration)
/// plus the final engine for DAG inspection.
fn run_churn(
    script: &[(usize, bool, u64)],
    seed: u64,
    shared: bool,
) -> (BTreeMap<u64, Vec<String>>, Vec<u64>, DataCell) {
    let mut cell =
        DataCell::new(DataCellConfig { shared_execution: shared, ..Default::default() });
    cell.execute("CREATE STREAM t (ts BIGINT, k BIGINT, v BIGINT)").unwrap();
    let mut live: Vec<u64> = Vec::new();
    let mut outputs: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut lcg = Lcg(seed | 1);
    let mut t = 0i64;
    for &(ci, dereg, n) in script {
        if dereg && !live.is_empty() {
            let victim = (lcg.next() % live.len() as u64) as usize;
            let qid = live.swap_remove(victim);
            drain(&mut cell, &[qid], &mut outputs);
            cell.deregister_query(qid).unwrap();
        } else {
            let qid = cell
                .register_query_with_mode(CANDIDATES[ci], ExecutionMode::Incremental)
                .unwrap();
            outputs.insert(qid, Vec::new());
            live.push(qid);
        }
        let rows: Vec<Row> = (0..n as i64).map(|i| row(t + i)).collect();
        t += n as i64;
        cell.push_rows("t", &rows).unwrap();
        cell.run_until_idle().unwrap();
        drain(&mut cell, &live, &mut outputs);
    }
    (outputs, live, cell)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// REGISTER/DEREGISTER churn under sharing: for an arbitrary
    /// register/deregister/ingest script, (a) every query's output —
    /// survivors and deregistered victims alike — is identical with
    /// sharing on and off (churn of *other* queries never disturbs a
    /// live one), and (b) deregistering the survivors drains the shared
    /// DAG to empty: refcounted nodes never leak.
    #[test]
    fn churn_never_leaks_or_disturbs_survivors(
        script in collection::vec(
            (0usize..5, (0u8..2).prop_map(|b| b == 1), 1u64..6),
            1..30,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let (off, _, _) = run_churn(&script, seed, false);
        let (on, live, mut cell) = run_churn(&script, seed, true);
        prop_assert_eq!(off, on, "churned output diverged between sharing off/on");

        for qid in live {
            cell.deregister_query(qid).unwrap();
        }
        let stats = cell.stats();
        prop_assert_eq!(stats.shared_nodes, 0, "orphaned shared nodes leaked");
        prop_assert_eq!(stats.shared_nodes_active, 0);
    }
}
