//! Engine-level tests of the bounded-emitter overflow policy and the
//! shutdown hook: slow subscribers must never grow an unbounded queue
//! (drop-oldest, counted in `EngineStats::dropped_chunks`), and
//! `DataCell::shutdown` must wake blocked emitters with end-of-stream.

use std::time::Duration;

use datacell_core::{DataCell, DataCellConfig};

fn tiny_capacity_cell(capacity: Option<usize>) -> DataCell {
    let mut cell = DataCell::new(DataCellConfig {
        emitter_capacity: capacity,
        ..Default::default()
    });
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    cell
}

/// Push `batches` single-row batches, firing after each one so every batch
/// produces exactly one result chunk.
fn feed(cell: &mut DataCell, batches: i64) {
    for i in 0..batches {
        cell.push_rows("s", &[vec![i.into()]]).unwrap();
        cell.run_until_idle().unwrap();
    }
}

#[test]
fn slow_subscriber_drops_oldest_chunks() {
    let mut cell = tiny_capacity_cell(Some(3));
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let em = cell.subscribe(q).unwrap();
    feed(&mut cell, 10);
    // 10 chunks produced, queue bounded at 3 → 7 dropped, newest retained.
    let got = em.drain();
    assert_eq!(got.len(), 3);
    assert_eq!(em.dropped(), 7);
    assert_eq!(cell.stats().dropped_chunks, 7);
    // The engine-side pending-results queue is unaffected.
    assert_eq!(cell.take_results(q).unwrap().len(), 10);
}

#[test]
fn unbounded_capacity_keeps_everything() {
    let mut cell = tiny_capacity_cell(None);
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let em = cell.subscribe(q).unwrap();
    feed(&mut cell, 10);
    assert_eq!(em.drain().len(), 10);
    assert_eq!(cell.stats().dropped_chunks, 0);
}

#[test]
fn dropped_subscriber_is_pruned_not_counted() {
    let mut cell = tiny_capacity_cell(Some(2));
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let em = cell.subscribe(q).unwrap();
    drop(em);
    feed(&mut cell, 5);
    // The disconnected subscriber is pruned on first send; nothing counts
    // as overflow because nothing was queued.
    assert_eq!(cell.stats().dropped_chunks, 0);
}

#[test]
fn shutdown_wakes_subscribers_with_end_of_stream() {
    let mut cell = tiny_capacity_cell(Some(8));
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let em = cell.subscribe(q).unwrap();
    feed(&mut cell, 2);
    cell.shutdown();
    assert!(em.is_closed());
    // Buffered chunks still drain, then the emitter reports closure
    // immediately instead of blocking out the full timeout.
    assert!(em.next_timeout(Duration::from_secs(5)).is_some());
    assert!(em.next_timeout(Duration::from_secs(5)).is_some());
    let start = std::time::Instant::now();
    assert!(em.next_timeout(Duration::from_secs(5)).is_none());
    assert!(start.elapsed() < Duration::from_secs(1));
}

#[test]
fn fan_out_delivers_to_every_subscriber() {
    let mut cell = tiny_capacity_cell(Some(16));
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let a = cell.subscribe(q).unwrap();
    let b = cell.subscribe(q).unwrap();
    feed(&mut cell, 4);
    let ca = a.drain();
    let cb = b.drain();
    assert_eq!(ca.len(), 4);
    assert_eq!(ca, cb, "fan-out must deliver identical chunk streams");
}
