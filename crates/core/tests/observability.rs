//! End-to-end observability: the engine's metrics registry, chunk-lifecycle
//! latency tracing, flight recorder, and the EXPLAIN ANALYZE / STATS DETAIL
//! text surfaces — plus the guarantee that turning tracing off (or on)
//! never changes query results.

use std::time::Duration;

use datacell_core::{DataCell, DataCellConfig};
use datacell_obs::parse_prometheus;
use datacell_storage::Value;

fn rows(n: usize, base: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(base + i as i64), Value::Int(10 * (i as i64 + 1))])
        .collect()
}

fn driven_engine(config: DataCellConfig) -> (DataCell, u64) {
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts TIMESTAMP, val BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*), SUM(val) FROM s").unwrap();
    for batch in 0..4 {
        cell.push_rows("s", &rows(8, batch * 8)).unwrap();
        cell.run_until_idle().unwrap();
    }
    (cell, q)
}

#[test]
fn lifecycle_latency_series_fill_and_render_as_prometheus() {
    let (mut cell, q) = driven_engine(DataCellConfig::default());
    let sub = cell.subscribe(q).unwrap();
    cell.push_rows("s", &rows(8, 100)).unwrap();
    cell.run_until_idle().unwrap();
    while sub.next_timeout(Duration::from_millis(10)).is_some() {}

    let snap = cell.metrics_snapshot();
    assert_eq!(snap.counter("datacell_ingest_rows_total"), Some(40));
    assert!(snap.counter("datacell_firings_total").unwrap() >= 5);
    assert!(snap.counter("datacell_fire_rows_in_total").unwrap() >= 40);
    // Every lifecycle latency stage observed at least one sample.
    for name in [
        "datacell_basket_wait_us",
        "datacell_factory_fire_us",
        "datacell_scheduler_pass_us",
        "datacell_e2e_latency_us",
        "datacell_emitter_queue_us",
    ] {
        let h = snap.histogram(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count > 0, "{name} recorded no samples");
    }
    // Derived engine series are merged into the page.
    assert_eq!(snap.gauge("datacell_queries"), Some(1));
    assert!(snap.values.contains_key("datacell_uptime_seconds"));

    // The METRICS page is valid Prometheus text exposition format.
    let text = cell.metrics_text();
    let samples = parse_prometheus(&text).expect("valid exposition format");
    assert!(samples.iter().any(|s| s.name == "datacell_e2e_latency_us_bucket"));
    assert!(samples.iter().any(|s| s.name == "datacell_ingest_rows_total"));
}

#[test]
fn observability_off_records_nothing_and_results_match() {
    let off = DataCellConfig { observability: false, ..Default::default() };
    let (cell_off, q_off) = driven_engine(off);
    let (cell_on, q_on) = driven_engine(DataCellConfig::default());

    let snap = cell_off.metrics_snapshot();
    assert_eq!(snap.counter("datacell_ingest_rows_total"), Some(0));
    assert_eq!(snap.histogram("datacell_e2e_latency_us").map(|h| h.count), Some(0));
    assert!(cell_off.trace_events(None).is_empty());

    // Tracing never changes results: both engines emitted identical chunks.
    let mut on = cell_on;
    let mut offc = cell_off;
    assert_eq!(offc.take_results(q_off).unwrap(), on.take_results(q_on).unwrap());
}

#[test]
fn explain_analyze_and_stats_detail_render_timing() {
    let (cell, q) = driven_engine(DataCellConfig::default());
    let analyze = cell.explain_analyze(q).unwrap();
    assert!(analyze.contains("== analyze =="), "analyze table present:\n{analyze}");
    assert!(analyze.contains(&format!("q{q}")));
    assert!(analyze.contains("p99_us"));

    let detail = cell.stats_detail();
    assert!(detail.contains("== queries =="));
    assert!(detail.contains("== analyze =="));
    assert!(detail.contains("== latency =="), "latency summary present:\n{detail}");
    assert!(detail.contains("end-to-end"));

    assert!(cell.explain_analyze(999).is_err());
}

#[test]
fn flight_recorder_captures_lifecycle_and_drains() {
    let (mut cell, q) = driven_engine(DataCellConfig::default());
    cell.set_query_paused(q, true).unwrap();
    cell.set_query_paused(q, false).unwrap();
    let recorded = cell.obs().events_recorded();
    assert!(recorded >= 4, "expected create/register/pause events, got {recorded}");

    // Drain the 2 most recent events: the pause/resume pair, oldest first.
    let recent = cell.trace_events(Some(2));
    assert_eq!(recent.len(), 2);
    assert!(recent.iter().all(|e| e.kind == "pause"));
    assert!(recent[0].seq < recent[1].seq);
    // Draining consumed them; the rest is still there, then empty.
    let rest = cell.trace_events(None);
    assert!(rest.iter().all(|e| e.kind != "pause"));
    assert!(cell.trace_events(None).is_empty());
}

#[test]
fn per_query_drop_attribution_reaches_stats() {
    let config = DataCellConfig { emitter_capacity: Some(2), ..Default::default() };
    let mut cell = DataCell::new(config);
    cell.execute("CREATE STREAM s (ts TIMESTAMP, val BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let _sub = cell.subscribe(q).unwrap(); // never drained → overflows
    for batch in 0..6 {
        cell.push_rows("s", &rows(4, batch * 4)).unwrap();
        cell.run_until_idle().unwrap();
    }
    let stats = cell.stats();
    assert!(stats.dropped_chunks > 0, "bounded queue must have overflowed");
    let qs = stats.queries.iter().find(|x| x.id == q).unwrap();
    assert_eq!(qs.dropped, stats.dropped_chunks, "all drops attribute to q{q}");
    let snap = cell.metrics_snapshot();
    assert_eq!(
        snap.counter("datacell_emitter_dropped_chunks_total"),
        Some(stats.dropped_chunks)
    );
}
