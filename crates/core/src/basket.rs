//! Baskets: the lightweight stream tables of DataCell.
//!
//! "When an event stream enters the system via a receptor, stream tuples
//! are immediately stored in a lightweight table, called basket. By
//! collecting event tuples into baskets, DataCell can evaluate the
//! continuous queries over the baskets as if they were normal one-time
//! queries… Once a tuple has been seen by all relevant queries/operators,
//! it is dropped from its basket." (paper §3)
//!
//! A basket is columnar like a table (one BAT per attribute, shared dense
//! OID head) but supports *retirement*: dropping a consumed prefix while
//! OIDs keep advancing, so factory cursors remain valid.

use datacell_storage::{Bat, Chunk, Oid, Result as StorageResult, Row, Schema};

/// A windowed, append-only columnar stream buffer.
#[derive(Debug, Clone)]
pub struct Basket {
    name: String,
    schema: Schema,
    columns: Vec<Bat>,
    /// Total tuples ever appended.
    arrived: u64,
    /// Total tuples retired (dropped from the front).
    retired: u64,
    /// Paused receptors stop appending (demo §4 "Pause and Resume").
    paused: bool,
}

impl Basket {
    /// Create an empty basket for `schema`.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Bat::new(c.ty)).collect();
        Basket { name: name.into(), schema, columns, arrived: 0, retired: 0, paused: false }
    }

    /// Basket name (= stream name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tuple schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuples currently buffered.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Bat::len)
    }

    /// True iff no tuples are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// OID of the oldest buffered tuple.
    pub fn first_oid(&self) -> Oid {
        self.columns.first().map_or(0, Bat::oid_base)
    }

    /// One-past-the-newest OID (the high-water mark).
    pub fn high_water(&self) -> Oid {
        self.columns.first().map_or(0, Bat::oid_end)
    }

    /// Total tuples ever appended.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Total tuples retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the basket is paused (appends rejected).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause/resume ingestion.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// Append one validated row; returns its OID, or `None` when paused.
    pub fn push(&mut self, row: &Row) -> StorageResult<Option<Oid>> {
        if self.paused {
            return Ok(None);
        }
        self.schema.validate_row(row)?;
        let oid = self.high_water();
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push(val)?;
        }
        self.arrived += 1;
        Ok(Some(oid))
    }

    /// Append many rows (all validated first); returns how many entered.
    pub fn push_rows(&mut self, rows: &[Row]) -> StorageResult<usize> {
        if self.paused {
            return Ok(0);
        }
        for row in rows {
            self.schema.validate_row(row)?;
        }
        for row in rows {
            for (col, val) in self.columns.iter_mut().zip(row) {
                col.push(val)?;
            }
        }
        self.arrived += rows.len() as u64;
        Ok(rows.len())
    }

    /// Append a pre-built columnar chunk (receptor bulk path).
    pub fn push_chunk(&mut self, chunk: &Chunk) -> StorageResult<usize> {
        if self.paused {
            return Ok(0);
        }
        for (col, inc) in self.columns.iter_mut().zip(chunk.columns()) {
            col.append(inc)?;
        }
        self.arrived += chunk.len() as u64;
        Ok(chunk.len())
    }

    /// Copy the tuples with OIDs in `[lo, hi)` (clamped) as a chunk whose
    /// columns keep their original OID heads.
    pub fn slice(&self, lo: Oid, hi: Oid) -> Chunk {
        Chunk::new(self.columns.iter().map(|c| c.slice_oids(lo, hi)).collect())
            .expect("basket columns aligned")
    }

    /// The whole buffered contents.
    pub fn contents(&self) -> Chunk {
        self.slice(self.first_oid(), self.high_water())
    }

    /// Drop all tuples with OID `< keep_from` — called by the scheduler once
    /// every consumer's cursor has passed them.
    pub fn retire_before(&mut self, keep_from: Oid) {
        let first = self.first_oid();
        if keep_from <= first {
            return;
        }
        let n = (keep_from.min(self.high_water()) - first) as usize;
        for c in &mut self.columns {
            c.drop_front(n);
        }
        self.retired += n as u64;
    }

    /// Timestamp value of the newest tuple in column `col` (RANGE windows).
    pub fn last_value_int(&self, col: usize) -> Option<i64> {
        let bat = self.columns.get(col)?;
        if bat.is_empty() {
            return None;
        }
        bat.get_at(bat.len() - 1).as_int()
    }

    /// Approximate buffered bytes (monitor pane).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Bat::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Value};

    fn basket() -> Basket {
        Basket::new("s", Schema::of(&[("ts", DataType::Int), ("v", DataType::Float)]))
    }

    fn row(ts: i64, v: f64) -> Row {
        vec![Value::Int(ts), Value::Float(v)]
    }

    #[test]
    fn push_and_high_water() {
        let mut b = basket();
        assert_eq!(b.push(&row(1, 0.5)).unwrap(), Some(0));
        assert_eq!(b.push(&row(2, 1.5)).unwrap(), Some(1));
        assert_eq!(b.high_water(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arrived(), 2);
    }

    #[test]
    fn validation_enforced() {
        let mut b = basket();
        assert!(b.push(&vec![Value::Str("x".into()), Value::Null]).is_err());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn retirement_advances_base_keeps_oids() {
        let mut b = basket();
        b.push_rows(&[row(1, 1.0), row(2, 2.0), row(3, 3.0)]).unwrap();
        b.retire_before(2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_oid(), 2);
        assert_eq!(b.high_water(), 3);
        assert_eq!(b.retired(), 2);
        // retiring before the current base is a no-op
        b.retire_before(1);
        assert_eq!(b.len(), 1);
        // new arrivals continue the OID sequence
        b.push(&row(4, 4.0)).unwrap();
        assert_eq!(b.high_water(), 4);
    }

    #[test]
    fn slice_windows() {
        let mut b = basket();
        for i in 0..10 {
            b.push(&row(i, i as f64)).unwrap();
        }
        let w = b.slice(3, 7);
        assert_eq!(w.len(), 4);
        assert_eq!(w.column(0).oid_base(), 3);
        assert_eq!(w.row(0)[0], Value::Int(3));
        // clamping
        let w = b.slice(8, 100);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn pause_blocks_appends() {
        let mut b = basket();
        b.set_paused(true);
        assert_eq!(b.push(&row(1, 1.0)).unwrap(), None);
        assert_eq!(b.push_rows(&[row(1, 1.0)]).unwrap(), 0);
        assert!(b.is_paused());
        b.set_paused(false);
        assert_eq!(b.push(&row(1, 1.0)).unwrap(), Some(0));
    }

    #[test]
    fn last_value_for_range_windows() {
        let mut b = basket();
        assert_eq!(b.last_value_int(0), None);
        b.push(&row(42, 0.0)).unwrap();
        assert_eq!(b.last_value_int(0), Some(42));
    }

    #[test]
    fn push_chunk_bulk_path() {
        let mut b = basket();
        let chunk = Chunk::new(vec![
            Bat::from_ints(vec![1, 2]),
            Bat::from_floats(vec![0.1, 0.2]),
        ])
        .unwrap();
        assert_eq!(b.push_chunk(&chunk).unwrap(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arrived(), 2);
    }
}
