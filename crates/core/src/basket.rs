//! Baskets: the lightweight stream tables of DataCell.
//!
//! "When an event stream enters the system via a receptor, stream tuples
//! are immediately stored in a lightweight table, called basket. By
//! collecting event tuples into baskets, DataCell can evaluate the
//! continuous queries over the baskets as if they were normal one-time
//! queries… Once a tuple has been seen by all relevant queries/operators,
//! it is dropped from its basket." (paper §3)
//!
//! A basket is columnar like a table (one BAT per attribute, shared dense
//! OID head) but supports *retirement*: dropping a consumed prefix while
//! OIDs keep advancing, so factory cursors remain valid.
//!
//! Retirement is *amortized O(1)*: [`Basket::retire_before`] only advances a
//! logical first-OID watermark. The dead prefix stays in the columns until it
//! exceeds the live tail (i.e. more than half the buffer is dead), at which
//! point one physical `drop_front` compacts it. Every accessor reads through
//! the watermark, so the lazy state is observationally identical to eager
//! dropping.

use std::collections::VecDeque;
use std::time::Instant;

use datacell_storage::{
    binio, Bat, Chunk, IngestStamp, Oid, Result as StorageResult, Row, Schema,
};
use datacell_wal::StreamLog;

/// Arrival-tick ring capacity. One entry per ingest batch; at the default
/// per-tuple firing threshold a factory consumes ticks as fast as they
/// arrive, so this bound only matters for bursty ingest — when it
/// overflows the oldest ticks are dropped and the affected tuples simply
/// go unstamped (latency histograms lose samples, never correctness).
const TICKS_CAP: usize = 4096;

/// A windowed, append-only columnar stream buffer.
#[derive(Debug)]
pub struct Basket {
    name: String,
    schema: Schema,
    columns: Vec<Bat>,
    /// Logical first OID. Tuples with OID below it are retired; the columns
    /// may still physically hold a dead prefix `[column base, first)` that is
    /// compacted lazily.
    first: Oid,
    /// Total tuples ever appended.
    arrived: u64,
    /// Total tuples retired (logically dropped from the front).
    retired: u64,
    /// Paused receptors stop appending (demo §4 "Pause and Resume").
    paused: bool,
    /// Durability: when attached, every append is logged (write-ahead)
    /// and retirement truncates the log. `None` = in-memory basket.
    wal: Option<StreamLog>,
    /// Degraded durability: when a WAL write exhausts its retries the
    /// basket detaches its log and keeps ingesting un-durably, recording
    /// why here. `None` = never degraded (fully durable, or in-memory by
    /// configuration).
    degraded: Option<String>,
    /// One-shot transition marker the engine drains
    /// ([`Basket::take_degraded_event`]) to count and log the escalation
    /// exactly once.
    degraded_event: bool,
    /// Observability: when on, each ingest batch records an arrival tick
    /// so window slices can be stamped for latency tracing.
    trace: bool,
    /// OIDs below this have no tick (retired, or evicted by the bounded
    /// ring) — lookups must miss rather than borrow the next batch's tick.
    tick_floor: Oid,
    /// Arrival ticks, one per traced batch: `(end_oid, arrived_at)` where
    /// the batch covers OIDs `[previous end_oid, end_oid)`. Bounded ring;
    /// entries are pruned as the retirement watermark passes them.
    ticks: VecDeque<(Oid, Instant)>,
}

impl Basket {
    /// Create an empty basket for `schema`.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Bat::new(c.ty)).collect();
        Basket {
            name: name.into(),
            schema,
            columns,
            first: 0,
            arrived: 0,
            retired: 0,
            paused: false,
            wal: None,
            degraded: None,
            degraded_event: false,
            trace: false,
            tick_floor: 0,
            ticks: VecDeque::new(),
        }
    }

    /// Recreate a basket whose tuples below `base` were already retired
    /// before a restart (recovery path): OIDs continue from `base`, the
    /// lifetime counters account for the retired prefix, and the replayed
    /// live tail is appended afterwards via [`Basket::push_rows`].
    pub fn restore(name: impl Into<String>, schema: Schema, base: Oid) -> Self {
        let columns = schema.columns().iter().map(|c| Bat::with_base(c.ty, base)).collect();
        Basket {
            name: name.into(),
            schema,
            columns,
            first: base,
            arrived: base,
            retired: base,
            paused: false,
            wal: None,
            degraded: None,
            degraded_event: false,
            trace: false,
            tick_floor: base,
            ticks: VecDeque::new(),
        }
    }

    /// Enable/disable arrival-tick tracing (set by the engine from
    /// [`DataCellConfig::observability`](crate::DataCellConfig)).
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
        if !trace {
            self.ticks.clear();
        }
    }

    /// Record an arrival tick covering all tuples appended since the last
    /// tick (i.e. up to the current high-water mark).
    fn record_arrival(&mut self) {
        if !self.trace {
            return;
        }
        if self.ticks.len() == TICKS_CAP {
            if let Some((end, _)) = self.ticks.pop_front() {
                self.tick_floor = self.tick_floor.max(end);
            }
        }
        self.ticks.push_back((self.high_water(), Instant::now()));
    }

    /// Arrival tick of the batch that delivered `oid`, if still tracked.
    pub fn arrival_tick(&self, oid: Oid) -> Option<Instant> {
        if oid < self.tick_floor {
            return None;
        }
        // First tick whose covered range `[prev_end, end)` reaches past
        // `oid` — ticks are sorted by end OID, so partition_point works.
        let idx = self.ticks.partition_point(|&(end, _)| end <= oid);
        self.ticks.get(idx).map(|&(_, at)| at)
    }

    /// Attach the write-ahead log. Appends from here on are logged before
    /// they land; recovery replay must happen *before* attaching (replayed
    /// rows must not be re-logged).
    pub fn attach_wal(&mut self, log: StreamLog) {
        self.wal = Some(log);
    }

    /// Whether a write-ahead log is attached.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Why durability was dropped, when the basket escalated to degraded
    /// operation (`None` = never degraded).
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Drain the one-shot degraded-transition marker: returns the reason
    /// the first time after the escalation, `None` afterwards. The engine
    /// polls this after each push to count and log the transition once.
    pub(crate) fn take_degraded_event(&mut self) -> Option<String> {
        if self.degraded_event {
            self.degraded_event = false;
            self.degraded.clone()
        } else {
            None
        }
    }

    /// Escalate to degraded durability: detach the log so ingest keeps
    /// flowing un-durably, remember why, and arm the one-shot marker.
    fn degrade(&mut self, reason: String) {
        self.wal = None;
        self.degraded = Some(reason);
        self.degraded_event = true;
    }

    /// Fsync the attached log (checkpoint path). No-op when in-memory.
    /// An fsync that exhausts its retries degrades the basket (like a
    /// failed append) rather than failing the caller: the checkpoint
    /// proceeds over the remaining durable state.
    pub fn sync_wal(&mut self) -> StorageResult<()> {
        let Some(log) = &mut self.wal else {
            return Ok(());
        };
        if let Err(e) = log.sync() {
            self.degrade(e.to_string());
        }
        Ok(())
    }

    /// Write-ahead: log `rows` as one batch starting at the current
    /// high-water mark. Called after validation, before the append lands.
    ///
    /// A write that exhausts the WAL's retry policy does **not** fail the
    /// push — losing availability over a disk hiccup would be worse than
    /// losing the durability guarantee. Instead the basket escalates to
    /// degraded operation: the log is detached, ingest continues
    /// un-durably, and the transition is surfaced loudly (engine stats,
    /// metrics gauge, flight-recorder event) via the drained
    /// [`Basket::take_degraded_event`] marker.
    fn log_rows(&mut self, rows: &[Row]) -> StorageResult<()> {
        let Some(log) = &mut self.wal else {
            return Ok(());
        };
        let mut buf = Vec::new();
        binio::encode_batch(&mut buf, &self.schema, rows);
        let first = self.columns.first().map_or(0, Bat::oid_end);
        if let Err(e) = log.append_batch(first, rows.len() as u32, &buf) {
            self.degrade(e.to_string());
        }
        Ok(())
    }

    /// Basket name (= stream name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tuple schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuples currently buffered (live, i.e. not yet retired).
    pub fn len(&self) -> usize {
        (self.high_water() - self.first) as usize
    }

    /// True iff no live tuples are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// OID of the oldest live tuple (the retirement watermark).
    pub fn first_oid(&self) -> Oid {
        self.first
    }

    /// Tuples physically present but already retired (awaiting compaction).
    fn dead(&self) -> usize {
        (self.first - self.columns.first().map_or(self.first, Bat::oid_base)) as usize
    }

    /// One-past-the-newest OID (the high-water mark).
    pub fn high_water(&self) -> Oid {
        self.columns.first().map_or(0, Bat::oid_end)
    }

    /// Total tuples ever appended.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Total tuples retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the basket is paused (appends rejected).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause/resume ingestion.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// Append one validated row; returns its OID, or `None` when paused.
    pub fn push(&mut self, row: &Row) -> StorageResult<Option<Oid>> {
        if self.paused {
            return Ok(None);
        }
        self.schema.validate_row(row)?;
        self.log_rows(std::slice::from_ref(row))?;
        let oid = self.high_water();
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push(val)?;
        }
        self.arrived += 1;
        self.record_arrival();
        Ok(Some(oid))
    }

    /// Append many rows (all validated first); returns how many entered.
    ///
    /// The append is column-at-a-time: each column BAT folds in its cells
    /// for the whole batch in one bulk pass (one ownership acquisition and
    /// one reservation per column, instead of one per cell). This is the
    /// receptor and server PUSH hot path.
    pub fn push_rows(&mut self, rows: &[Row]) -> StorageResult<usize> {
        if self.paused || rows.is_empty() {
            return Ok(0);
        }
        for row in rows {
            self.schema.validate_row(row)?;
        }
        self.log_rows(rows)?;
        for (j, col) in self.columns.iter_mut().enumerate() {
            col.extend_from_rows(rows, j)?;
        }
        self.arrived += rows.len() as u64;
        self.record_arrival();
        Ok(rows.len())
    }

    /// Append a pre-built columnar chunk (receptor bulk path).
    pub fn push_chunk(&mut self, chunk: &Chunk) -> StorageResult<usize> {
        if self.paused {
            return Ok(0);
        }
        // Columnar schema gate: the zip-append below would silently
        // truncate a ragged chunk, so arity/type/NOT-NULL must be checked
        // up front — this is the trust boundary for binary `PUSH` frames.
        self.schema.validate_chunk(chunk)?;
        if self.wal.is_some() {
            // The durable path pays a row conversion here; the columnar
            // fast path below is untouched when no log is attached. The
            // rows must validate *before* they are logged — a batch that
            // then failed to apply would leave a phantom record whose
            // advanced OID chain truncates every later batch at recovery.
            let rows: Vec<Row> = chunk.rows().collect();
            for row in &rows {
                self.schema.validate_row(row)?;
            }
            self.log_rows(&rows)?;
        }
        for (col, inc) in self.columns.iter_mut().zip(chunk.columns()) {
            col.append(inc)?;
        }
        self.arrived += chunk.len() as u64;
        if !chunk.is_empty() {
            self.record_arrival();
        }
        Ok(chunk.len())
    }

    /// Copy the tuples with OIDs in `[lo, hi)` (clamped to the live range)
    /// as a chunk whose columns keep their original OID heads. Retired
    /// tuples are never returned, even while they physically linger before
    /// compaction.
    pub fn slice(&self, lo: Oid, hi: Oid) -> Chunk {
        let lo = lo.max(self.first);
        let mut chunk = Chunk::new(self.columns.iter().map(|c| c.slice_oids(lo, hi)).collect())
            // lint:allow(panic-freedom): all basket columns share one OID range, so equal-length slices
            .expect("basket columns aligned");
        if self.trace && !chunk.is_empty() {
            // Stamp with the *newest* covered tuple's arrival: latency
            // then measures "last contributing event → result", the
            // DataCell notion of response time.
            let newest = hi.min(self.high_water()).saturating_sub(1);
            if let Some(at) = self.arrival_tick(newest) {
                chunk.set_stamp(IngestStamp::at(at));
            }
        }
        chunk
    }

    /// The whole buffered contents.
    pub fn contents(&self) -> Chunk {
        self.slice(self.first_oid(), self.high_water())
    }

    /// Retire all tuples with OID `< keep_from` — called by the scheduler
    /// once every consumer's cursor in the basket's partition has passed
    /// them (the watermark protocol). Amortized O(1): only the logical
    /// watermark advances; the columns are compacted when the dead prefix
    /// outgrows the live tail.
    pub fn retire_before(&mut self, keep_from: Oid) {
        let keep_from = keep_from.min(self.high_water());
        if keep_from <= self.first {
            return;
        }
        self.retired += keep_from - self.first;
        self.first = keep_from;
        let dead = self.dead();
        if dead > self.len() {
            for c in &mut self.columns {
                c.drop_front(dead);
            }
        }
        // Retirement doubles as the log-truncation point: whole segments
        // below the watermark are deleted (cheap no-op otherwise).
        if let Some(log) = &mut self.wal {
            log.truncate_below(self.first);
        }
        // Ticks whose whole covered range is retired can never be queried.
        while self.ticks.front().is_some_and(|&(end, _)| end <= self.first) {
            self.ticks.pop_front();
        }
        self.tick_floor = self.tick_floor.max(self.first);
    }

    /// Timestamp value of the newest live tuple in column `col`
    /// (RANGE windows).
    pub fn last_value_int(&self, col: usize) -> Option<i64> {
        if self.is_empty() {
            return None;
        }
        let bat = self.columns.get(col)?;
        bat.get_at(bat.len() - 1).as_int()
    }

    /// Approximate buffered bytes (monitor pane): the columns' windows.
    /// Factory/emitter views sharing these buffers are not double-counted —
    /// a view reports only its own window (see `Bat::byte_size`).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Bat::byte_size).sum()
    }

    /// Bytes physically pinned by the backing buffers, including the
    /// retired-but-uncompacted prefix and anything kept alive by live
    /// views (≥ `byte_size`).
    pub fn buffer_byte_size(&self) -> usize {
        self.columns.iter().map(Bat::buffer_byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Value};

    fn basket() -> Basket {
        Basket::new("s", Schema::of(&[("ts", DataType::Int), ("v", DataType::Float)]))
    }

    fn row(ts: i64, v: f64) -> Row {
        vec![Value::Int(ts), Value::Float(v)]
    }

    #[test]
    fn push_and_high_water() {
        let mut b = basket();
        assert_eq!(b.push(&row(1, 0.5)).unwrap(), Some(0));
        assert_eq!(b.push(&row(2, 1.5)).unwrap(), Some(1));
        assert_eq!(b.high_water(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arrived(), 2);
    }

    #[test]
    fn validation_enforced() {
        let mut b = basket();
        assert!(b.push(&vec![Value::Str("x".into()), Value::Null]).is_err());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn retirement_advances_base_keeps_oids() {
        let mut b = basket();
        b.push_rows(&[row(1, 1.0), row(2, 2.0), row(3, 3.0)]).unwrap();
        b.retire_before(2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_oid(), 2);
        assert_eq!(b.high_water(), 3);
        assert_eq!(b.retired(), 2);
        // retiring before the current base is a no-op
        b.retire_before(1);
        assert_eq!(b.len(), 1);
        // new arrivals continue the OID sequence
        b.push(&row(4, 4.0)).unwrap();
        assert_eq!(b.high_water(), 4);
    }

    #[test]
    fn slice_windows() {
        let mut b = basket();
        for i in 0..10 {
            b.push(&row(i, i as f64)).unwrap();
        }
        let w = b.slice(3, 7);
        assert_eq!(w.len(), 4);
        assert_eq!(w.column(0).oid_base(), 3);
        assert_eq!(w.row(0)[0], Value::Int(3));
        // clamping
        let w = b.slice(8, 100);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn pause_blocks_appends() {
        let mut b = basket();
        b.set_paused(true);
        assert_eq!(b.push(&row(1, 1.0)).unwrap(), None);
        assert_eq!(b.push_rows(&[row(1, 1.0)]).unwrap(), 0);
        assert!(b.is_paused());
        b.set_paused(false);
        assert_eq!(b.push(&row(1, 1.0)).unwrap(), Some(0));
    }

    #[test]
    fn retirement_is_lazy_until_half_dead() {
        let mut b = basket();
        for i in 0..10 {
            b.push(&row(i, i as f64)).unwrap();
        }
        let full_bytes = b.byte_size();
        // Retire less than half: watermark moves, columns stay untouched.
        b.retire_before(3);
        assert_eq!(b.first_oid(), 3);
        assert_eq!(b.len(), 7);
        assert_eq!(b.retired(), 3);
        assert_eq!(b.byte_size(), full_bytes, "dead prefix not yet compacted");
        // Dead tuples are invisible to slicing even while physically present.
        let w = b.slice(0, 10);
        assert_eq!(w.len(), 7);
        assert_eq!(w.column(0).oid_base(), 3);
        // Crossing the half-dead threshold compacts in one go.
        b.retire_before(8);
        assert_eq!(b.len(), 2);
        assert_eq!(b.retired(), 8);
        assert!(b.byte_size() < full_bytes, "compaction reclaimed the prefix");
        assert_eq!(b.slice(0, 10).row(0)[0], Value::Int(8));
    }

    #[test]
    fn fully_retired_basket_reads_as_empty() {
        let mut b = basket();
        b.push_rows(&[row(1, 1.0), row(2, 2.0), row(3, 3.0)]).unwrap();
        b.retire_before(3);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        // A logically empty basket must not leak retired values.
        assert_eq!(b.last_value_int(0), None);
        assert!(b.contents().is_empty());
        // OIDs keep advancing across full retirement.
        b.push(&row(9, 9.0)).unwrap();
        assert_eq!(b.high_water(), 4);
        assert_eq!(b.last_value_int(0), Some(9));
    }

    #[test]
    fn last_value_for_range_windows() {
        let mut b = basket();
        assert_eq!(b.last_value_int(0), None);
        b.push(&row(42, 0.0)).unwrap();
        assert_eq!(b.last_value_int(0), Some(42));
    }

    #[test]
    fn live_window_views_survive_retirement_compaction() {
        let mut b = basket();
        for i in 0..10 {
            b.push(&row(i, i as f64)).unwrap();
        }
        // A factory-style window view over tuples [2, 8).
        let window = b.slice(2, 8);
        assert!(window.column(0).shares_buffer_with(b.contents().column(0)));
        let frozen: Vec<Row> = window.rows().collect();
        // Retire past the view's start and cross the half-dead compaction
        // threshold while the view is alive.
        b.retire_before(6);
        b.retire_before(9);
        assert_eq!(b.len(), 1);
        // The view still reads its original window, byte for byte.
        assert_eq!(window.rows().collect::<Vec<Row>>(), frozen);
        assert_eq!(window.column(0).oid_base(), 2);
        // New arrivals after compaction are invisible to the view.
        b.push(&row(99, 99.0)).unwrap();
        assert_eq!(window.len(), 6);
        assert_eq!(b.slice(0, 100).row(0)[0], Value::Int(9));
    }

    #[test]
    fn push_rows_appends_column_at_a_time() {
        let mut b = basket();
        // A bulk batch lands identically to cell-wise pushes, including
        // NULL tracking, and still validates every row up front.
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::Float(2.5)],
        ];
        assert_eq!(b.push_rows(&rows).unwrap(), 3);
        let c = b.contents();
        assert_eq!(c.row(1), vec![Value::Int(2), Value::Null]);
        assert_eq!(c.column(1).valid_count(), 2);
        // A batch with a bad row is rejected whole.
        let bad = vec![vec![Value::Int(4), Value::Float(1.0)], vec![Value::Str("x".into()), Value::Null]];
        assert!(b.push_rows(&bad).is_err());
        assert_eq!(b.len(), 3, "failed batch must not partially land");
        assert_eq!(b.arrived(), 3);
    }

    #[test]
    fn buffer_bytes_track_pinned_prefix_under_live_views() {
        let mut b = basket();
        for i in 0..8 {
            b.push(&row(i, i as f64)).unwrap();
        }
        let window = b.slice(0, 8); // pins the buffers
        let full = b.byte_size();
        assert_eq!(b.buffer_byte_size(), full);
        // Retire everything: compaction wants to drop the prefix but the
        // live view pins the physical buffer.
        b.retire_before(8);
        assert_eq!(b.len(), 0);
        assert_eq!(b.byte_size(), 0, "window bytes report the live window");
        assert_eq!(b.buffer_byte_size(), full, "pinned bytes report the buffer");
        drop(window);
        // With the view gone the next retirement-compaction reclaims.
        b.push(&row(9, 9.0)).unwrap();
        b.retire_before(9);
        assert_eq!(b.buffer_byte_size(), 0);
    }

    #[test]
    fn arrival_ticks_stamp_slices_and_prune_on_retire() {
        let mut b = basket();
        assert!(b.slice(0, 10).stamp().instant().is_none(), "no trace, no stamp");
        b.set_trace(true);
        b.push_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        let before = Instant::now();
        b.push(&row(3, 3.0)).unwrap();
        // The slice stamp is the arrival tick of its *newest* tuple.
        let stamp = b.slice(0, 3).stamp().instant().expect("traced slice is stamped");
        assert!(stamp >= before);
        let older = b.slice(0, 2).stamp().instant().expect("older window stamped too");
        assert!(older <= before);
        // Retirement prunes ticks; fully retired ranges lose their stamp,
        // live ones keep it.
        b.retire_before(2);
        assert!(b.arrival_tick(0).is_none());
        assert!(b.arrival_tick(2).is_some());
        // Disabling tracing drops the ring and stops stamping.
        b.set_trace(false);
        b.push(&row(4, 4.0)).unwrap();
        assert!(b.slice(0, 10).stamp().instant().is_none());
    }

    #[test]
    fn wal_failure_degrades_instead_of_failing_ingest() {
        use datacell_faults::{FaultPlan, Faults};
        use datacell_wal::{io_for, RetryPolicy, SharedStats, SyncPolicy};
        use std::sync::Arc;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!("datacell-basket-degrade-{nanos}"));
        let faults = Faults::enabled(
            FaultPlan::parse("seed=1;wal_append:nth=2:enospc").unwrap(),
        );
        let (log, _) = StreamLog::open_with_io(
            &dir,
            SyncPolicy::Never,
            1 << 20,
            Arc::new(SharedStats::default()),
            io_for(&faults),
            RetryPolicy::none(),
        )
        .unwrap();
        let mut b = basket();
        b.attach_wal(log);
        assert!(b.is_durable());
        // First append logs fine.
        b.push(&row(1, 1.0)).unwrap();
        assert!(b.take_degraded_event().is_none());
        // The second hits the injected ENOSPC: the push still lands, the
        // log is detached, and the transition marker fires exactly once.
        b.push(&row(2, 2.0)).unwrap();
        assert_eq!(b.len(), 2);
        assert!(!b.is_durable());
        assert!(b.degraded().is_some());
        assert!(b.take_degraded_event().is_some());
        assert!(b.take_degraded_event().is_none());
        // Further ingest keeps flowing un-durably.
        b.push(&row(3, 3.0)).unwrap();
        assert_eq!(b.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn push_chunk_bulk_path() {
        let mut b = basket();
        let chunk = Chunk::new(vec![
            Bat::from_ints(vec![1, 2]),
            Bat::from_floats(vec![0.1, 0.2]),
        ])
        .unwrap();
        assert_eq!(b.push_chunk(&chunk).unwrap(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arrived(), 2);
    }
}
