//! Shared multi-query execution runtime: the refcounted DAG of common
//! subplans and the per-pass evaluation cache.
//!
//! At REGISTER time the engine canonicalizes each query's leading operators
//! into structural fingerprints ([`datacell_plan::shared`]); the scheduler
//! folds them into a [`SharedPlanDag`] whose nodes are refcounted by the
//! queries that use them, and stamps every factory with its fan-out. Per
//! scheduler pass, the first factory to reach a shared node evaluates it
//! once — a `Candidates` selection vector, or a whole basic-window
//! [`PartialAgg`] — and parks the result in a [`PassCache`]; the other
//! factories sharing the fingerprint reuse it for the same window span.
//! DEREGISTER decrements the refcounts and reclaims orphaned nodes.
//!
//! The cache is keyed by `(structural hash, window span)` and verified
//! against the canonical key *text* on every hit, so a hash collision
//! degrades to a miss instead of cross-wiring two queries.

use std::collections::{BTreeSet, HashMap};

use datacell_algebra::Candidates;
use datacell_plan::{PartialAgg, SharedNodeKind, SharedShape, SubplanKey};
use datacell_storage::Chunk;

use crate::factory::WindowSpan;

/// One refcounted node of the shared-subplan DAG.
#[derive(Debug, Clone)]
pub struct SharedNode {
    /// Which stage this node caches.
    pub kind: SharedNodeKind,
    /// Structural hash of the canonical text (the cache key).
    pub hash: u64,
    /// Queries referencing this node (the refcount is `qids.len()`).
    pub qids: BTreeSet<u64>,
}

/// The DAG of shared subplan nodes across all registered queries, keyed by
/// canonical text. Maintained incrementally: REGISTER inserts, DEREGISTER
/// removes and reclaims nodes whose refcount drops to zero.
#[derive(Debug, Default)]
pub struct SharedPlanDag {
    nodes: HashMap<String, SharedNode>,
}

impl SharedPlanDag {
    /// Fold one query's shareable prefix into the DAG.
    pub fn insert_query(&mut self, qid: u64, shape: &SharedShape) {
        for (kind, key) in shape.nodes() {
            let node = self.nodes.entry(key.text.clone()).or_insert_with(|| SharedNode {
                kind,
                hash: key.hash,
                qids: BTreeSet::new(),
            });
            node.qids.insert(qid);
        }
    }

    /// Drop one query from every node it references; nodes with no
    /// remaining references are reclaimed.
    pub fn remove_query(&mut self, qid: u64) {
        self.nodes.retain(|_, node| {
            node.qids.remove(&qid);
            !node.qids.is_empty()
        });
    }

    /// Reference count of the node with this canonical text (0 = absent).
    pub fn refs(&self, text: &str) -> usize {
        self.nodes.get(text).map_or(0, |n| n.qids.len())
    }

    /// Total nodes currently in the DAG.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes referenced by more than one query.
    pub fn shared_node_count(&self) -> usize {
        self.nodes.values().filter(|n| n.qids.len() >= 2).count()
    }

    /// The `(kind, canonical text, refcount)` rows of the nodes query
    /// `qid` participates in — window first, then select, then agg (the
    /// EXPLAIN "shared subplans" section).
    pub fn nodes_of(&self, qid: u64) -> Vec<(SharedNodeKind, String, usize)> {
        let mut rows: Vec<(SharedNodeKind, String, usize)> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.qids.contains(&qid))
            .map(|(text, n)| (n.kind, text.clone(), n.qids.len()))
            .collect();
        let rank = |k: SharedNodeKind| match k {
            SharedNodeKind::Window => 0,
            SharedNodeKind::Select => 1,
            SharedNodeKind::GroupAgg => 2,
        };
        rows.sort_by(|a, b| rank(a.0).cmp(&rank(b.0)).then_with(|| a.1.cmp(&b.1)));
        rows
    }

    /// True iff the DAG holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Per-pass memo of shared-node evaluations: each entry is one shared node
/// evaluated over one basic-window span this round. Cleared at the start
/// of every scheduler round (`begin_round`); the hit/miss counters are
/// cumulative for stats.
#[derive(Debug, Default)]
pub struct PassCache {
    selects: HashMap<(u64, WindowSpan), (String, Candidates)>,
    partials: HashMap<(u64, WindowSpan), (String, PartialAgg)>,
    merged: HashMap<(u64, WindowSpan), (String, Chunk)>,
    /// Shared evaluations reused (evaluations saved).
    pub hits: u64,
    /// Shared evaluations that had to run (first query to arrive).
    pub misses: u64,
}

impl PassCache {
    /// Start a new scheduler round: entries from the previous round refer
    /// to already-consumed window spans and are dropped; counters persist.
    pub fn begin_round(&mut self) {
        self.selects.clear();
        self.partials.clear();
        self.merged.clear();
    }

    /// Look up a shared selection result, verifying the canonical text.
    pub fn get_select(&mut self, key: &SubplanKey, span: WindowSpan) -> Option<Candidates> {
        match self.selects.get(&(key.hash, span)) {
            Some((text, cand)) if *text == key.text => {
                self.hits += 1;
                Some(cand.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Park a selection result for the rest of the round.
    pub fn put_select(&mut self, key: &SubplanKey, span: WindowSpan, cand: Candidates) {
        self.selects
            .entry((key.hash, span))
            .or_insert_with(|| (key.text.clone(), cand));
    }

    /// Look up a shared basic-window partial, verifying the canonical text.
    pub fn get_partial(&mut self, key: &SubplanKey, span: WindowSpan) -> Option<PartialAgg> {
        match self.partials.get(&(key.hash, span)) {
            Some((text, p)) if *text == key.text => {
                self.hits += 1;
                Some(p.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Park a basic-window partial for the rest of the round.
    pub fn put_partial(&mut self, key: &SubplanKey, span: WindowSpan, partial: PartialAgg) {
        self.partials
            .entry((key.hash, span))
            .or_insert_with(|| (key.text.clone(), partial));
    }

    /// Look up a shared *finalized full-window* aggregate chunk: queries
    /// with the same agg fingerprint merge identical rings into identical
    /// results, so the merge + finalize runs once per span per round.
    pub fn get_merged(&mut self, key: &SubplanKey, span: WindowSpan) -> Option<Chunk> {
        match self.merged.get(&(key.hash, span)) {
            Some((text, chunk)) if *text == key.text => {
                self.hits += 1;
                Some(chunk.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Park a finalized full-window aggregate for the rest of the round.
    pub fn put_merged(&mut self, key: &SubplanKey, span: WindowSpan, chunk: Chunk) {
        self.merged
            .entry((key.hash, span))
            .or_insert_with(|| (key.text.clone(), chunk));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_plan::shared::fnv1a;

    fn key(text: &str) -> SubplanKey {
        SubplanKey { text: text.into(), hash: fnv1a(text.as_bytes()) }
    }

    fn shape(window: &str, select: Option<&str>, agg: Option<&str>) -> SharedShape {
        SharedShape {
            window: Some(key(window)),
            select: select.map(key),
            agg: agg.map(key),
        }
    }

    #[test]
    fn dag_refcounts_and_reclaims() {
        let mut dag = SharedPlanDag::default();
        let a = shape("w", Some("w|p"), Some("w|p|a"));
        let b = shape("w", Some("w|p"), Some("w|p|b"));
        dag.insert_query(1, &a);
        dag.insert_query(2, &b);
        assert_eq!(dag.node_count(), 4); // w, w|p, w|p|a, w|p|b
        assert_eq!(dag.refs("w"), 2);
        assert_eq!(dag.refs("w|p|a"), 1);
        assert_eq!(dag.shared_node_count(), 2);

        dag.remove_query(1);
        assert_eq!(dag.refs("w"), 1);
        assert_eq!(dag.refs("w|p|a"), 0, "orphaned node reclaimed");
        assert_eq!(dag.node_count(), 3);
        dag.remove_query(2);
        assert!(dag.is_empty());
    }

    #[test]
    fn dag_nodes_of_orders_stages() {
        let mut dag = SharedPlanDag::default();
        dag.insert_query(7, &shape("w", Some("w|p"), Some("w|p|a")));
        let rows = dag.nodes_of(7);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, SharedNodeKind::Window);
        assert_eq!(rows[1].0, SharedNodeKind::Select);
        assert_eq!(rows[2].0, SharedNodeKind::GroupAgg);
        assert!(dag.nodes_of(8).is_empty());
    }

    #[test]
    fn cache_round_trip_and_round_boundary() {
        let mut cache = PassCache::default();
        let k = key("w|p");
        let span = (10, 20);
        assert!(cache.get_select(&k, span).is_none());
        cache.put_select(&k, span, Candidates::range(12, 15));
        assert_eq!(cache.get_select(&k, span), Some(Candidates::range(12, 15)));
        assert!(cache.get_select(&k, (20, 30)).is_none(), "different span");
        assert_eq!((cache.hits, cache.misses), (1, 2));

        cache.begin_round();
        assert!(cache.get_select(&k, span).is_none(), "entries die with the round");
        assert_eq!((cache.hits, cache.misses), (1, 3), "counters survive");
    }

    #[test]
    fn cache_detects_hash_collisions() {
        let mut cache = PassCache::default();
        let real = key("w|p");
        // Forge a different node with the same hash.
        let forged = SubplanKey { text: "other".into(), hash: real.hash };
        cache.put_select(&real, (0, 5), Candidates::range(0, 1));
        assert!(cache.get_select(&forged, (0, 5)).is_none(), "text mismatch is a miss");
    }

    #[test]
    fn cache_merged_round_trip() {
        let mut cache = PassCache::default();
        let k = key("w|p|agg");
        assert!(cache.get_merged(&k, (0, 20)).is_none());
        cache.put_merged(&k, (0, 20), Chunk::default());
        let got = cache.get_merged(&k, (0, 20)).expect("entry present");
        assert_eq!(got.len(), 0);
        assert!(cache.get_merged(&k, (5, 25)).is_none(), "different full span");
        cache.begin_round();
        assert!(cache.get_merged(&k, (0, 20)).is_none(), "entries die with the round");
    }

    #[test]
    fn cache_partials_keep_first_entry() {
        let mut cache = PassCache::default();
        let k = key("agg");
        cache.put_partial(&k, (0, 5), PartialAgg::default());
        let got = cache.get_partial(&k, (0, 5)).expect("entry present");
        assert_eq!(got.rows_in, 0);
    }
}
