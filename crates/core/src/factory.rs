//! Factories: resumable continuous-query plan instances.
//!
//! "Continuous query plans are represented by factories, i.e., a kind of
//! co-routine… Each factory encloses a (partial) query plan and produces a
//! partial result at each call. For this, a factory continuously reads data
//! from the input baskets, evaluates its query plan and creates a result
//! set… The factory remains active as long as the continuous query remains
//! in the system." (paper §3)
//!
//! A factory owns per-stream window cursors and — in incremental mode —
//! the cached basic-window partials (rings of [`PartialAgg`]s or pairwise
//! join caches). Each `fire()` consumes exactly one slide step.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell_algebra::{Candidates, JoinHashTable};
use datacell_plan::{
    execute, shared_shape, BoundExpr, CompiledQuery, ExecSources, ExecutionMode,
    IncrementalAggPlan, IncrementalJoinPlan, IncrementalPlan, PartialAgg, PlanError,
    SharedShape, AGG_BINDING, JOIN_BINDING,
};
use datacell_obs::HistogramSnapshot;
use datacell_sql::WindowSpec;
use datacell_storage::{Catalog, Chunk, IngestStamp, Oid, Schema};
use parking_lot::RwLock;

use crate::basket::Basket;
use crate::config::DataCellConfig;
use crate::error::{EngineError, Result};
use crate::obs::EngineObs;
use crate::shared::PassCache;

/// Shared handle to a basket.
pub type BasketHandle = Arc<RwLock<Basket>>;

/// Everything a factory needs at fire time.
pub struct FireContext<'a> {
    /// Baskets by stream name (lowercase).
    pub baskets: &'a HashMap<String, BasketHandle>,
    /// The catalog, for table snapshots.
    pub catalog: &'a Catalog,
    /// Engine knobs.
    pub config: &'a DataCellConfig,
    /// The engine's WAL, when durability is on: the scheduler writes a
    /// fire record after every firing and retires baskets against the
    /// replay-aware bound ([`Factory::durable_needed_from`]).
    pub wal: Option<&'a crate::durability::EngineWal>,
    /// Observability hub: firings record their duration, rows in/out and
    /// basket-wait latency here. `None` = don't record (tests, recovery
    /// replay — replayed firings would pollute live latency series).
    pub obs: Option<&'a EngineObs>,
}

/// Window cursor over one stream input.
#[derive(Debug, Clone)]
enum Cursor {
    /// Consume-once semantics: everything since `next`.
    Unwindowed { next: Oid },
    /// Count-based basic windows of `slide` tuples; a full window is
    /// `ring_len` basic windows.
    Rows { slide: u64, ring_len: usize, next_bw_end: Oid },
    /// Time-based basic windows of `slide` units over column `col`.
    Range { slide: i64, ring_len: usize, col: usize, next_bw_end: Option<i64>, low_oid: Oid },
}

/// Runtime counters per factory (the demo's per-query Analysis pane).
#[derive(Debug, Clone, Default)]
pub struct FactoryStats {
    /// Number of times the factory fired.
    pub firings: u64,
    /// Stream tuples consumed.
    pub tuples_in: u64,
    /// Result tuples produced.
    pub tuples_out: u64,
    /// Total time spent evaluating.
    pub busy: Duration,
    /// Rows of the most recent result.
    pub last_result_rows: usize,
    /// Tuples touched by plan evaluation in the last firing (intermediate
    /// volume — what incremental mode shrinks).
    pub last_tuples_touched: u64,
    /// Per-factory firing-duration histogram (microseconds) — the
    /// `EXPLAIN ANALYZE` percentile source. Plain (non-atomic): the
    /// factory records under its own `&mut`.
    pub fire_us: HistogramSnapshot,
}

/// The OID range `[start, end)` of one consumed basic window — the
/// replay coordinates of incremental ring state. Persisted in fire
/// records so recovery can recompute ring entries from the retained
/// basket tail.
pub type WindowSpan = (Oid, Oid);

/// Incremental runtime state.
enum IncrState {
    Agg(AggRings),
    Join(JoinRings),
}

/// Ring of per-basic-window partial aggregates.
struct AggRings {
    ring: VecDeque<PartialAgg>,
    /// Delta chunks kept only when partial caching is disabled (ablation).
    raw_ring: VecDeque<Chunk>,
    /// OID spans of the ring entries (durability metadata; same length
    /// and order as whichever ring is in use).
    spans: VecDeque<WindowSpan>,
}

/// Pairwise basic-window join caches.
struct JoinRings {
    left: VecDeque<(u64, WindowSpan, Chunk)>,
    right: VecDeque<(u64, WindowSpan, Chunk, JoinHashTable)>,
    next_epoch: u64,
    /// `(left_epoch, right_epoch)` → cached pair result.
    pairs: HashMap<(u64, u64), PairCache>,
}

enum PairCache {
    Agg(PartialAgg),
    Rows(Chunk),
}

/// Serializable position of one stream cursor (durability metadata; the
/// static parts — slide, ring length, timestamp column — are re-derived
/// from the compiled plan at recovery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorState {
    /// Consume-once position.
    Unwindowed {
        /// Next unconsumed OID.
        next: Oid,
    },
    /// Count-window position.
    Rows {
        /// One past the end of the next basic window.
        next_bw_end: Oid,
    },
    /// Time-window position.
    Range {
        /// Value boundary of the next basic window (None before the
        /// first tuple fixed it).
        next_bw_end: Option<i64>,
        /// OID where the next basic window starts.
        low_oid: Oid,
    },
}

/// Serializable incremental-ring metadata: which basic windows the rings
/// currently cover. The ring *contents* are never serialized — recovery
/// recomputes them from the retained basket tuples, which
/// [`Factory::durable_needed_from`] guarantees are still there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrMeta {
    /// Re-evaluation mode (or no incremental plan): cursors suffice.
    None,
    /// Aggregate ring: spans of the cached basic windows, oldest first.
    Agg {
        /// Basic-window spans in ring order.
        spans: Vec<WindowSpan>,
    },
    /// Join rings: `(epoch, start, end)` per side plus the epoch counter
    /// (epoch order fixes the deterministic pair-emission order).
    Join {
        /// Left ring windows, oldest first.
        left: Vec<(u64, Oid, Oid)>,
        /// Right ring windows, oldest first.
        right: Vec<(u64, Oid, Oid)>,
        /// Next epoch to assign.
        next_epoch: u64,
    },
}

/// The complete resumable position of one factory — what a WAL fire
/// record carries. Restoring this (plus the basket tuples retained by the
/// durable retention bound) reproduces the factory exactly: the next fire
/// emits the same chunk it would have emitted without the restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactoryState {
    /// Per-binding cursor positions (sorted by binding).
    pub cursors: Vec<(String, CursorState)>,
    /// Incremental ring coverage.
    pub incr: IncrMeta,
}

/// A factory: one continuous query instance.
pub struct Factory {
    /// Engine-assigned query id.
    pub id: u64,
    /// The compiled query.
    pub query: CompiledQuery,
    /// Effective execution mode (may be forced to re-evaluation when the
    /// plan does not decompose).
    pub mode: ExecutionMode,
    /// Why incremental mode was refused, if it was requested but unusable.
    pub mode_note: Option<String>,
    /// Paused factories are never enabled (demo §4 "Pause and Resume").
    pub paused: bool,
    /// Structural fingerprints of the query's shareable subplan prefix
    /// (window → select → group-agg); folded into the scheduler's shared
    /// DAG at REGISTER time.
    pub shape: SharedShape,
    /// How many registered queries share this factory's select
    /// fingerprint (stamped by the scheduler; 1 = unshared).
    pub sharing_select: usize,
    /// How many registered queries share this factory's group-agg
    /// fingerprint (stamped by the scheduler; 1 = unshared).
    pub sharing_agg: usize,
    cursors: HashMap<String, Cursor>,
    incr: Option<IncrState>,
    table_cache: HashMap<String, (u64, Chunk)>,
    /// Tuples consumed by the most recent window advance (stats detail).
    last_delta_len: u64,
    /// Newest arrival tick among the windows consumed by the current
    /// firing — reset per fire, merged by every basket slice, stamped
    /// onto the result chunk (the end-to-end latency thread).
    fire_input_stamp: IngestStamp,
    /// Runtime counters.
    pub stats: FactoryStats,
}

fn ring_len_of(w: &WindowSpec) -> Option<usize> {
    match w {
        WindowSpec::Rows { size, slide } => {
            (size % slide == 0).then(|| (size / slide) as usize)
        }
        WindowSpec::Range { size, slide, .. } => {
            (size % slide == 0).then(|| (size / slide) as usize)
        }
    }
}

impl Factory {
    /// Build a factory for `query` in `requested` mode, positioned at the
    /// current high-water marks of the baskets (a new query only sees
    /// future tuples).
    pub fn new(
        id: u64,
        query: CompiledQuery,
        requested: ExecutionMode,
        baskets: &HashMap<String, BasketHandle>,
        catalog: &Catalog,
    ) -> Result<Self> {
        let mut cursors = HashMap::new();
        for s in &query.streams {
            let basket = baskets
                .get(&s.object.to_ascii_lowercase())
                .ok_or_else(|| EngineError::UnknownStream(s.object.clone()))?;
            let hw = basket.read().high_water();
            let cursor = match &s.window {
                None => Cursor::Unwindowed { next: hw },
                Some(w @ WindowSpec::Rows { slide, .. }) => Cursor::Rows {
                    slide: *slide,
                    ring_len: ring_len_of(w).unwrap_or(1),
                    next_bw_end: hw + slide,
                },
                Some(w @ WindowSpec::Range { slide, on, .. }) => {
                    let schema = catalog.schema_of(&s.object).map_err(EngineError::Storage)?;
                    let col = schema.index_of(on).map_err(EngineError::Storage)?;
                    Cursor::Range {
                        slide: *slide,
                        ring_len: ring_len_of(w).unwrap_or(1),
                        col,
                        next_bw_end: None,
                        low_oid: hw,
                    }
                }
            };
            cursors.insert(s.binding.to_ascii_lowercase(), cursor);
        }

        // Decide the effective mode.
        let mut mode = requested;
        let mut mode_note = None;
        let mut incr = None;
        if requested == ExecutionMode::Incremental {
            let divisible = query
                .streams
                .iter()
                .all(|s| s.window.as_ref().is_none_or(|w| ring_len_of(w).is_some()));
            match (&query.incremental, divisible) {
                (Some(IncrementalPlan::Aggregate(_)), true) => {
                    incr = Some(IncrState::Agg(AggRings {
                        ring: VecDeque::new(),
                        raw_ring: VecDeque::new(),
                        spans: VecDeque::new(),
                    }));
                }
                (Some(IncrementalPlan::Join(_)), true) => {
                    incr = Some(IncrState::Join(JoinRings {
                        left: VecDeque::new(),
                        right: VecDeque::new(),
                        next_epoch: 0,
                        pairs: HashMap::new(),
                    }));
                }
                (None, _) => {
                    mode = ExecutionMode::Reevaluate;
                    mode_note =
                        Some("plan does not decompose; falling back to re-evaluation".into());
                }
                (_, false) => {
                    mode = ExecutionMode::Reevaluate;
                    mode_note = Some(
                        "window size not divisible by slide; falling back to re-evaluation"
                            .into(),
                    );
                }
            }
        }

        let shape = shared_shape(&query);
        Ok(Factory {
            id,
            query,
            mode,
            mode_note,
            paused: false,
            shape,
            sharing_select: 1,
            sharing_agg: 1,
            cursors,
            incr,
            table_cache: HashMap::new(),
            last_delta_len: 0,
            fire_input_stamp: IngestStamp::default(),
            stats: FactoryStats::default(),
        })
    }

    /// Petri-net firing condition: is there a complete next slide on every
    /// stream input (and is the factory not paused)?
    pub fn enabled(&self, ctx: &FireContext<'_>) -> bool {
        if self.paused || self.cursors.is_empty() {
            return false;
        }
        self.query.streams.iter().all(|s| {
            let Some(basket) = ctx.baskets.get(&s.object.to_ascii_lowercase()) else {
                return false;
            };
            let b = basket.read();
            match &self.cursors[&s.binding.to_ascii_lowercase()] {
                Cursor::Unwindowed { next } => {
                    b.high_water().saturating_sub(*next) >= ctx.config.firing_threshold as u64
                        && b.high_water() > *next
                }
                Cursor::Rows { next_bw_end, .. } => b.high_water() >= *next_bw_end,
                Cursor::Range { col, next_bw_end, .. } => match b.last_value_int(*col) {
                    None => false,
                    Some(last) => match next_bw_end {
                        None => true, // first tuple arrived; boundary can be set
                        Some(end) => last >= *end,
                    },
                },
            }
        })
    }

    /// The OID this factory still needs from `stream` (retirement bound).
    pub fn needed_from(&self, binding: &str) -> Option<Oid> {
        match self.cursors.get(&binding.to_ascii_lowercase())? {
            Cursor::Unwindowed { next } => Some(*next),
            Cursor::Rows { slide, ring_len, next_bw_end } => {
                // Oldest basic window still inside the *next* full window.
                Some(next_bw_end.saturating_sub(slide * (*ring_len as u64)))
            }
            Cursor::Range { low_oid, .. } => Some(*low_oid),
        }
    }

    /// Consume one slide step: evaluate and return the result chunk (None
    /// when the slide completed but no output is due yet, e.g. the first
    /// window is still filling in incremental mode). `cache` is the
    /// scheduler's per-pass shared-subplan memo; pass `None` to evaluate
    /// standalone (tests, recovery).
    pub fn fire(
        &mut self,
        ctx: &FireContext<'_>,
        cache: Option<&mut PassCache>,
    ) -> Result<Option<Chunk>> {
        let start = Instant::now();
        self.fire_input_stamp = IngestStamp::default();
        let tuples_in_before = self.stats.tuples_in;
        let mut result = match self.mode {
            ExecutionMode::Reevaluate => self.fire_reevaluate(ctx),
            ExecutionMode::Incremental => self.fire_incremental(ctx, cache),
        };
        let elapsed = start.elapsed();
        self.stats.busy += elapsed;
        self.stats.firings += 1;
        self.stats.fire_us.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
        let mut rows_out = 0u64;
        if let Ok(Some(chunk)) = &mut result {
            rows_out = chunk.len() as u64;
            self.stats.tuples_out += rows_out;
            self.stats.last_result_rows = chunk.len();
            // Thread the newest consumed arrival tick through to the
            // emitted chunk — downstream stages (engine sink, emitter,
            // server) measure their latency against it.
            chunk.set_stamp(self.fire_input_stamp);
        }
        if let Some(obs) = ctx.obs {
            obs.record_fire(elapsed, self.stats.tuples_in - tuples_in_before, rows_out);
            if let Some(arrived) = self.fire_input_stamp.instant() {
                obs.record_basket_wait(start.saturating_duration_since(arrived));
            }
        }
        result
    }

    // ---- full re-evaluation mode -------------------------------------

    fn fire_reevaluate(&mut self, ctx: &FireContext<'_>) -> Result<Option<Chunk>> {
        let mut sources = ExecSources::new();
        let mut touched = 0u64;
        // Current windows per stream.
        let streams = self.query.streams.clone();
        for s in &streams {
            let basket = ctx
                .baskets
                .get(&s.object.to_ascii_lowercase())
                .ok_or_else(|| EngineError::UnknownStream(s.object.clone()))?;
            let window = self.advance_window(&s.binding, &basket.read())?;
            touched += window.len() as u64;
            self.stats.tuples_in += self.last_delta_len;
            sources.bind(&s.binding, window);
        }
        self.bind_tables(ctx, &mut sources)?;
        let out = execute(&self.query.plan, &sources).map_err(EngineError::Plan)?;
        self.stats.last_tuples_touched = touched;
        Ok(Some(out))
    }

    /// Slice the current full window of `binding` and advance its cursor by
    /// one slide.
    fn advance_window(&mut self, binding: &str, basket: &Basket) -> Result<Chunk> {
        let chunk = self.advance_window_inner(binding, basket)?;
        self.fire_input_stamp = self.fire_input_stamp.merged(chunk.stamp());
        Ok(chunk)
    }

    fn advance_window_inner(&mut self, binding: &str, basket: &Basket) -> Result<Chunk> {
        let key = binding.to_ascii_lowercase();
        let _spec = self.query.window_of(binding).cloned();
        let cursor = self
            .cursors
            .get_mut(&key)
            .ok_or_else(|| EngineError::UnknownStream(binding.to_owned()))?;
        match cursor {
            Cursor::Unwindowed { next } => {
                let hi = basket.high_water();
                let chunk = basket.slice(*next, hi);
                self.last_delta_len = chunk.len() as u64;
                *next = hi;
                Ok(chunk)
            }
            Cursor::Rows { slide, ring_len, next_bw_end } => {
                let size = (*ring_len as u64) * *slide;
                let end = *next_bw_end + (*ring_len as u64 - 1) * *slide;
                // Window covering the *latest complete* basic window:
                // fire consumes basic window ending at next_bw_end; the full
                // window is the `size` tuples ending there plus the ones
                // before (may be partial at the start of the stream).
                let win_end = *next_bw_end;
                let win_start = win_end.saturating_sub(size);
                let chunk = basket.slice(win_start, win_end);
                self.last_delta_len = *slide;
                *next_bw_end += *slide;
                let _ = end;
                Ok(chunk)
            }
            Cursor::Range { slide, ring_len, col, next_bw_end, low_oid } => {
                let size = *slide * (*ring_len as i64);
                // Initialize the boundary lazily from the first tuple seen.
                let first_end = match next_bw_end {
                    Some(e) => *e,
                    None => {
                        let contents = basket.slice(*low_oid, basket.high_water());
                        let first_ts = contents
                            .column(*col)
                            .get_at(0)
                            .as_int()
                            .ok_or_else(|| {
                                EngineError::Plan(PlanError::Internal(
                                    "RANGE window over NULL timestamp".into(),
                                ))
                            })?;
                        let e = first_ts + *slide;
                        *next_bw_end = Some(e);
                        e
                    }
                };
                let win_end = first_end;
                let win_start = win_end - size;
                // Slice by value: rows with ts in [win_start, win_end).
                let chunk = basket.slice(*low_oid, basket.high_water());
                let ts = chunk.column(*col);
                let n = ts.len();
                let mut start_pos = 0usize;
                while start_pos < n
                    && ts.get_at(start_pos).as_int().is_some_and(|v| v < win_start)
                {
                    start_pos += 1;
                }
                let mut end_pos = start_pos;
                while end_pos < n
                    && ts.get_at(end_pos).as_int().is_some_and(|v| v < win_end)
                {
                    end_pos += 1;
                }
                let base = chunk.column(*col).oid_base();
                let out = chunk.slice_oids(base + start_pos as u64, base + end_pos as u64);
                self.last_delta_len = out.len() as u64;
                *next_bw_end = Some(win_end + *slide);
                *low_oid = base + start_pos as u64;
                Ok(out)
            }
        }
    }

    // ---- incremental mode ---------------------------------------------

    fn fire_incremental(
        &mut self,
        ctx: &FireContext<'_>,
        cache: Option<&mut PassCache>,
    ) -> Result<Option<Chunk>> {
        match self.query.incremental.clone() {
            Some(IncrementalPlan::Aggregate(plan)) => self.fire_incr_agg(ctx, &plan, cache),
            Some(IncrementalPlan::Join(plan)) => self.fire_incr_join(ctx, &plan),
            None => self.fire_reevaluate(ctx),
        }
    }

    /// Slice the *next basic window* (one slide of tuples) of `binding`,
    /// returning it together with its OID span (the ring's durability
    /// coordinates).
    fn next_basic_window(
        &mut self,
        binding: &str,
        basket: &Basket,
    ) -> Result<Option<(Chunk, WindowSpan)>> {
        let out = self.next_basic_window_inner(binding, basket)?;
        if let Some((chunk, _)) = &out {
            self.fire_input_stamp = self.fire_input_stamp.merged(chunk.stamp());
        }
        Ok(out)
    }

    fn next_basic_window_inner(
        &mut self,
        binding: &str,
        basket: &Basket,
    ) -> Result<Option<(Chunk, WindowSpan)>> {
        let key = binding.to_ascii_lowercase();
        let cursor = self
            .cursors
            .get_mut(&key)
            .ok_or_else(|| EngineError::UnknownStream(binding.to_owned()))?;
        match cursor {
            Cursor::Unwindowed { next } => {
                let hi = basket.high_water();
                if hi <= *next {
                    return Ok(None);
                }
                let chunk = basket.slice(*next, hi);
                let span = (*next, hi);
                *next = hi;
                Ok(Some((chunk, span)))
            }
            Cursor::Rows { slide, next_bw_end, .. } => {
                if basket.high_water() < *next_bw_end {
                    return Ok(None);
                }
                let span = (next_bw_end.saturating_sub(*slide), *next_bw_end);
                let chunk = basket.slice(span.0, span.1);
                *next_bw_end += *slide;
                Ok(Some((chunk, span)))
            }
            Cursor::Range { slide, col, next_bw_end, low_oid, .. } => {
                let contents = basket.slice(*low_oid, basket.high_water());
                if contents.is_empty() {
                    return Ok(None);
                }
                let end = match next_bw_end {
                    Some(e) => *e,
                    None => {
                        let first_ts =
                            contents.column(*col).get_at(0).as_int().unwrap_or(0);
                        let e = first_ts + *slide;
                        *next_bw_end = Some(e);
                        e
                    }
                };
                let last = basket.last_value_int(*col).unwrap_or(i64::MIN);
                if last < end {
                    return Ok(None);
                }
                let ts = contents.column(*col);
                let mut end_pos = 0usize;
                let n = ts.len();
                while end_pos < n && ts.get_at(end_pos).as_int().is_some_and(|v| v < end) {
                    end_pos += 1;
                }
                let base = ts.oid_base();
                let span = (base, base + end_pos as u64);
                let chunk = contents.slice_oids(span.0, span.1);
                *next_bw_end = Some(end + *slide);
                *low_oid = span.1;
                Ok(Some((chunk, span)))
            }
        }
    }

    fn ring_len_for(&self, binding: &str) -> usize {
        match self.cursors.get(&binding.to_ascii_lowercase()) {
            Some(Cursor::Rows { ring_len, .. }) | Some(Cursor::Range { ring_len, .. }) => {
                *ring_len
            }
            _ => 1,
        }
    }

    fn fire_incr_agg(
        &mut self,
        ctx: &FireContext<'_>,
        plan: &IncrementalAggPlan,
        mut cache: Option<&mut PassCache>,
    ) -> Result<Option<Chunk>> {
        let handle = ctx
            .baskets
            .get(&plan.stream.object.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(plan.stream.object.clone()))?;
        let delta = self.next_basic_window(&plan.stream.binding, &handle.read())?;
        let Some((delta, span)) = delta else {
            return Ok(None);
        };
        self.stats.tuples_in += delta.len() as u64;
        self.stats.last_tuples_touched = delta.len() as u64;

        let ring_len = self.ring_len_for(&plan.stream.binding);

        if ctx.config.cache_partials {
            let partial = self.partial_of(ctx, plan, &delta, span, cache.as_deref_mut())?;
            let Some(IncrState::Agg(rings)) = &mut self.incr else {
                return Err(EngineError::Plan(PlanError::Internal(
                    "incremental state missing".into(),
                )));
            };
            rings.spans.push_back(span);
            if rings.spans.len() > ring_len {
                rings.spans.pop_front();
            }
            rings.ring.push_back(partial);
            if rings.ring.len() > ring_len {
                rings.ring.pop_front();
            }
            if rings.ring.len() < ring_len {
                return Ok(None); // window still filling
            }
            // Queries with the same agg fingerprint hold identical rings
            // (built from the same shared partials), so the merge +
            // finalize of the full window is itself shared work: the first
            // factory to complete a span computes it, the rest reuse it.
            // Only the per-query post plan (projection/rename) runs per
            // factory.
            let full_span = (
                rings.spans.front().map_or(span.0, |s| s.0),
                rings.spans.back().map_or(span.1, |s| s.1),
            );
            let share_merged = ctx.config.shared_execution && self.sharing_agg >= 2;
            let agg_key = self.shape.agg.as_ref();
            let reused = match (share_merged, agg_key, cache.as_deref_mut()) {
                (true, Some(k), Some(c)) => c.get_merged(k, full_span),
                _ => None,
            };
            let agg_chunk = match reused {
                Some(chunk) => chunk,
                None => {
                    let mut merged = PartialAgg::default();
                    for p in &rings.ring {
                        merged.merge(p);
                    }
                    let agg_chunk = merged
                        .finalize(&plan.group_exprs, &plan.group_types, &plan.aggs)
                        .map_err(EngineError::Plan)?;
                    if let (true, Some(k), Some(c)) = (share_merged, agg_key, cache) {
                        c.put_merged(k, full_span, agg_chunk.clone());
                    }
                    agg_chunk
                }
            };
            self.run_post(ctx, &plan.post_plan, AGG_BINDING, agg_chunk).map(Some)
        } else {
            // Ablation: no partial caching — keep raw deltas and recompute
            // every basic window per slide. Compact first: a ring-held view
            // of the basket would force every future append to copy the
            // whole basket buffer.
            let mut sources = ExecSources::new();
            sources.bind(&plan.stream.binding, delta);
            self.bind_tables(ctx, &mut sources)?;
            let mut pre = execute(&plan.pre_plan, &sources).map_err(EngineError::Plan)?;
            pre.compact();
            let Some(IncrState::Agg(rings)) = &mut self.incr else {
                return Err(EngineError::Plan(PlanError::Internal(
                    "incremental state missing".into(),
                )));
            };
            rings.spans.push_back(span);
            if rings.spans.len() > ring_len {
                rings.spans.pop_front();
            }
            rings.raw_ring.push_back(pre);
            if rings.raw_ring.len() > ring_len {
                rings.raw_ring.pop_front();
            }
            if rings.raw_ring.len() < ring_len {
                return Ok(None);
            }
            let mut merged = PartialAgg::default();
            let mut touched = 0u64;
            for chunk in rings.raw_ring.iter() {
                touched += chunk.len() as u64;
                merged
                    .fold(chunk, &plan.group_exprs, &plan.aggs)
                    .map_err(EngineError::Plan)?;
            }
            self.stats.last_tuples_touched = touched;
            let agg_chunk = merged
                .finalize(&plan.group_exprs, &plan.group_types, &plan.aggs)
                .map_err(EngineError::Plan)?;
            self.run_post(ctx, &plan.post_plan, AGG_BINDING, agg_chunk).map(Some)
        }
    }

    /// The partial aggregate of one basic window, through the shared
    /// per-pass cache: when ≥2 registered queries share this factory's
    /// group-agg fingerprint, the first one to reach a `(fingerprint,
    /// span)` this round computes it and the rest reuse the result.
    fn partial_of(
        &mut self,
        ctx: &FireContext<'_>,
        plan: &IncrementalAggPlan,
        delta: &Chunk,
        span: WindowSpan,
        mut cache: Option<&mut PassCache>,
    ) -> Result<PartialAgg> {
        let share_agg = ctx.config.shared_execution && self.sharing_agg >= 2;
        if share_agg {
            if let (Some(key), Some(c)) = (&self.shape.agg, cache.as_deref_mut()) {
                if let Some(p) = c.get_partial(key, span) {
                    return Ok(p);
                }
            }
        }
        let partial = self.compute_partial(ctx, plan, delta, span, cache.as_deref_mut())?;
        if share_agg {
            if let (Some(key), Some(c)) = (&self.shape.agg, cache) {
                c.put_partial(key, span, partial.clone());
            }
        }
        Ok(partial)
    }

    /// Evaluate one basic window's partial aggregate. Takes the fused
    /// filter+aggregate kernel path when the pre-plan is a bare
    /// (optionally filtered) stream scan over plain columns, else the
    /// general execute-then-fold path. Both are field-identical (same
    /// group order, same accumulation order, bit-identical float sums) —
    /// the shared cache and WAL recovery rely on that.
    fn compute_partial(
        &mut self,
        ctx: &FireContext<'_>,
        plan: &IncrementalAggPlan,
        delta: &Chunk,
        span: WindowSpan,
        cache: Option<&mut PassCache>,
    ) -> Result<PartialAgg> {
        if self.query.tables.is_empty() && delta.arity() > 0 {
            if let Some(pred) = datacell_plan::shared::fused_filter(&plan.pre_plan) {
                let cand = match pred {
                    None => Candidates::all(delta.column(0)),
                    Some(p) => self.candidates_of(ctx, p, delta, span, cache)?,
                };
                if let Some(partial) =
                    PartialAgg::compute_fused(delta, &cand, &plan.group_exprs, &plan.aggs)
                        .map_err(EngineError::Plan)?
                {
                    return Ok(partial);
                }
            }
        }
        let mut sources = ExecSources::new();
        sources.bind(&plan.stream.binding, delta.clone());
        self.bind_tables(ctx, &mut sources)?;
        let pre = execute(&plan.pre_plan, &sources).map_err(EngineError::Plan)?;
        PartialAgg::compute(&pre, &plan.group_exprs, &plan.aggs).map_err(EngineError::Plan)
    }

    /// The selection vector of this factory's WHERE over one basic
    /// window, shared across queries whose window+predicate fingerprints
    /// match when ≥2 of them are registered.
    fn candidates_of(
        &mut self,
        ctx: &FireContext<'_>,
        pred: &BoundExpr,
        delta: &Chunk,
        span: WindowSpan,
        mut cache: Option<&mut PassCache>,
    ) -> Result<Candidates> {
        let share = ctx.config.shared_execution && self.sharing_select >= 2;
        if share {
            if let (Some(key), Some(c)) = (&self.shape.select, cache.as_deref_mut()) {
                if let Some(cand) = c.get_select(key, span) {
                    return Ok(cand);
                }
            }
        }
        let all = Candidates::all(delta.column(0));
        let cand =
            datacell_plan::eval_predicate(pred, delta, &all).map_err(EngineError::Plan)?;
        if share {
            if let (Some(key), Some(c)) = (&self.shape.select, cache) {
                c.put_select(key, span, cand.clone());
            }
        }
        Ok(cand)
    }

    fn fire_incr_join(
        &mut self,
        ctx: &FireContext<'_>,
        plan: &IncrementalJoinPlan,
    ) -> Result<Option<Chunk>> {
        // Pull at most one new basic window per side.
        let mut new_left: Option<(Chunk, WindowSpan)> = None;
        let mut new_right: Option<(Chunk, WindowSpan)> = None;
        for (side, stream) in [(0, &plan.left_stream), (1, &plan.right_stream)] {
            let handle = ctx
                .baskets
                .get(&stream.object.to_ascii_lowercase())
                .ok_or_else(|| EngineError::UnknownStream(stream.object.clone()))?;
            let delta = self.next_basic_window(&stream.binding, &handle.read())?;
            if let Some((delta, span)) = delta {
                self.stats.tuples_in += delta.len() as u64;
                let mut sources = ExecSources::new();
                sources.bind(&stream.binding, delta);
                self.bind_tables(ctx, &mut sources)?;
                let pre = if side == 0 {
                    execute(&plan.left_pre, &sources)
                } else {
                    execute(&plan.right_pre, &sources)
                }
                .map_err(EngineError::Plan)?;
                // The pre-chunk lives in the join rings for ring_len slides;
                // detach it from the basket buffers so ingestion keeps its
                // in-place append fast path.
                let mut pre = pre;
                pre.compact();
                if side == 0 {
                    new_left = Some((pre, span));
                } else {
                    new_right = Some((pre, span));
                }
            }
        }
        if new_left.is_none() && new_right.is_none() {
            return Ok(None);
        }

        let nl = self.ring_len_for(&plan.left_stream.binding);
        let nr = self.ring_len_for(&plan.right_stream.binding);
        let Some(IncrState::Join(rings)) = &mut self.incr else {
            return Err(EngineError::Plan(PlanError::Internal(
                "incremental join state missing".into(),
            )));
        };

        let mut touched = 0u64;
        // Insert new epochs and compute the new pairs only.
        if let Some((lc, span)) = new_left {
            let epoch = rings.next_epoch;
            rings.next_epoch += 1;
            touched += lc.len() as u64;
            for (re, _, rc, table) in rings.right.iter() {
                rings.pairs.insert((epoch, *re), compute_pair(plan, &lc, rc, table)?);
            }
            rings.left.push_back((epoch, span, lc));
            if let Some((old, _, _)) = (rings.left.len() > nl)
                .then(|| rings.left.pop_front())
                .flatten()
            {
                rings.pairs.retain(|(l, _), _| *l != old);
            }
        }
        if let Some((rc, span)) = new_right {
            let epoch = rings.next_epoch;
            rings.next_epoch += 1;
            touched += rc.len() as u64;
            let table = JoinHashTable::build(rc.column(plan.right_key), None);
            for (le, _, lc) in rings.left.iter() {
                rings.pairs.insert((*le, epoch), compute_pair(plan, lc, &rc, &table)?);
            }
            rings.right.push_back((epoch, span, rc, table));
            if let Some((old, _, _, _)) = (rings.right.len() > nr)
                .then(|| rings.right.pop_front())
                .flatten()
            {
                rings.pairs.retain(|(_, r), _| *r != old);
            }
        }
        self.stats.last_tuples_touched = touched;

        // Emit only once both windows are full.
        if rings.left.len() < nl || rings.right.len() < nr {
            return Ok(None);
        }

        // Deterministic pair order: by (left epoch, right epoch).
        let mut keys: Vec<(u64, u64)> = rings.pairs.keys().copied().collect();
        keys.sort_unstable();

        match &plan.agg {
            Some(agg) => {
                let mut merged = PartialAgg::default();
                for k in &keys {
                    if let PairCache::Agg(p) = &rings.pairs[k] {
                        merged.merge(p);
                    }
                }
                let chunk = merged
                    .finalize(&agg.group_exprs, &agg.group_types, &agg.aggs)
                    .map_err(EngineError::Plan)?;
                self.run_post(ctx, &plan.post_plan, AGG_BINDING, chunk).map(Some)
            }
            None => {
                let mut all = Chunk::empty();
                for k in &keys {
                    if let PairCache::Rows(c) = &rings.pairs[k] {
                        all.append(c).map_err(|e| EngineError::Plan(e.into()))?;
                    }
                }
                self.run_post(ctx, &plan.post_plan, JOIN_BINDING, all).map(Some)
            }
        }
    }

    fn run_post(
        &mut self,
        ctx: &FireContext<'_>,
        post: &datacell_plan::LogicalPlan,
        binding: &str,
        merged: Chunk,
    ) -> Result<Chunk> {
        let mut sources = ExecSources::new();
        sources.bind(binding, merged);
        self.bind_tables(ctx, &mut sources)?;
        execute(post, &sources).map_err(EngineError::Plan)
    }

    /// Bind snapshots of every referenced table, cached by table version.
    fn bind_tables(&mut self, ctx: &FireContext<'_>, sources: &mut ExecSources) -> Result<()> {
        for (binding, object) in self.query.tables.clone() {
            if binding.eq_ignore_ascii_case(AGG_BINDING)
                || binding.eq_ignore_ascii_case(JOIN_BINDING)
            {
                continue;
            }
            let handle = ctx.catalog.table(&object).map_err(EngineError::Storage)?;
            let table = handle.read();
            let version = table.version();
            let cached = self.table_cache.get(&binding);
            let chunk = match cached {
                Some((v, c)) if *v == version => c.clone(),
                _ => {
                    let snap = table.scan();
                    self.table_cache
                        .insert(binding.clone(), (version, snap.clone()));
                    snap
                }
            };
            sources.bind(&binding, chunk);
        }
        Ok(())
    }

    // ---- durability: resumable factory state --------------------------

    /// Capture the factory's complete resumable position (cursor
    /// positions + incremental ring coverage). Written to the WAL after
    /// every fire; see [`FactoryState`].
    pub fn state(&self) -> FactoryState {
        let mut cursors: Vec<(String, CursorState)> = self
            .cursors
            .iter()
            .map(|(binding, c)| {
                let cs = match c {
                    Cursor::Unwindowed { next } => CursorState::Unwindowed { next: *next },
                    Cursor::Rows { next_bw_end, .. } => {
                        CursorState::Rows { next_bw_end: *next_bw_end }
                    }
                    Cursor::Range { next_bw_end, low_oid, .. } => {
                        CursorState::Range { next_bw_end: *next_bw_end, low_oid: *low_oid }
                    }
                };
                (binding.clone(), cs)
            })
            .collect();
        cursors.sort_by(|a, b| a.0.cmp(&b.0));
        let incr = match &self.incr {
            None => IncrMeta::None,
            Some(IncrState::Agg(r)) => IncrMeta::Agg { spans: r.spans.iter().copied().collect() },
            Some(IncrState::Join(r)) => IncrMeta::Join {
                left: r.left.iter().map(|(e, s, _)| (*e, s.0, s.1)).collect(),
                right: r.right.iter().map(|(e, s, _, _)| (*e, s.0, s.1)).collect(),
                next_epoch: r.next_epoch,
            },
        };
        FactoryState { cursors, incr }
    }

    /// The oldest OID of `binding` recovery would need to rebuild this
    /// factory's state by replay: the normal retirement bound, lowered to
    /// the start of the oldest incremental ring window. Durable engines
    /// retire (and truncate the log) against this bound, so a restart can
    /// always recompute the rings from the retained basket tail.
    pub fn durable_needed_from(&self, binding: &str) -> Option<Oid> {
        let base = self.needed_from(binding)?;
        let ring_min = match (&self.incr, &self.query.incremental) {
            (Some(IncrState::Agg(r)), Some(IncrementalPlan::Aggregate(p)))
                if p.stream.binding.eq_ignore_ascii_case(binding) =>
            {
                r.spans.iter().map(|(s, _)| *s).min()
            }
            (Some(IncrState::Join(r)), Some(IncrementalPlan::Join(p))) => {
                if p.left_stream.binding.eq_ignore_ascii_case(binding) {
                    r.left.iter().map(|(_, s, _)| s.0).min()
                } else if p.right_stream.binding.eq_ignore_ascii_case(binding) {
                    r.right.iter().map(|(_, s, _, _)| s.0).min()
                } else {
                    None
                }
            }
            _ => None,
        };
        Some(ring_min.map_or(base, |m| m.min(base)))
    }

    /// Restore a freshly built factory to a saved position: set every
    /// cursor, then recompute the incremental rings by re-running each
    /// saved basic-window span through the pre-plan over the recovered
    /// baskets. For a full aggregate ring only the newest `ring_len - 1`
    /// entries are rebuilt — the oldest is popped unused by the very next
    /// fire, and its tuples are already retired.
    pub fn restore(&mut self, state: &FactoryState, ctx: &FireContext<'_>) -> Result<()> {
        let id = self.id;
        let corrupt =
            move |msg: &str| EngineError::Wal(format!("factory q{id} state mismatch: {msg}"));
        for (binding, cs) in &state.cursors {
            let Some(cursor) = self.cursors.get_mut(&binding.to_ascii_lowercase()) else {
                return Err(corrupt(&format!("unknown binding {binding}")));
            };
            match (cursor, cs) {
                (Cursor::Unwindowed { next }, CursorState::Unwindowed { next: n }) => {
                    *next = *n;
                }
                (Cursor::Rows { next_bw_end, .. }, CursorState::Rows { next_bw_end: n }) => {
                    *next_bw_end = *n;
                }
                (
                    Cursor::Range { next_bw_end, low_oid, .. },
                    CursorState::Range { next_bw_end: n, low_oid: l },
                ) => {
                    *next_bw_end = *n;
                    *low_oid = *l;
                }
                _ => return Err(corrupt(&format!("cursor kind changed for {binding}"))),
            }
        }
        // The saved position must be covered by the recovered basket: a
        // damaged stream-log tail can leave fire records pointing past
        // the surviving tuples, and `Basket::slice` would silently clamp
        // — wrong windows are worse than a loud recovery failure.
        for s in &self.query.streams {
            let Some(handle) = ctx.baskets.get(&s.object.to_ascii_lowercase()) else {
                continue;
            };
            let hw = handle.read().high_water();
            let consumed = match self.cursors.get(&s.binding.to_ascii_lowercase()) {
                Some(Cursor::Unwindowed { next }) => *next,
                Some(Cursor::Rows { slide, next_bw_end, .. }) => {
                    next_bw_end.saturating_sub(*slide)
                }
                Some(Cursor::Range { low_oid, .. }) => *low_oid,
                None => continue,
            };
            if consumed > hw {
                return Err(corrupt(&format!(
                    "stream {} lost its log tail: cursor consumed through oid \
                     {consumed} but only {hw} tuples survive",
                    s.object
                )));
            }
        }
        match (&state.incr, self.query.incremental.clone()) {
            (IncrMeta::None, _) => Ok(()),
            (IncrMeta::Agg { spans }, Some(IncrementalPlan::Aggregate(plan)))
                if self.mode == ExecutionMode::Incremental =>
            {
                let ring_len = self.ring_len_for(&plan.stream.binding);
                let skip = if spans.len() >= ring_len { spans.len() + 1 - ring_len } else { 0 };
                for &span in &spans[skip..] {
                    if ctx.config.cache_partials {
                        // Same compute path as a live fire (fused kernels
                        // included), so recovered ring partials are
                        // bit-identical to the ones the crash wiped out.
                        let delta = self.delta_of(ctx, &plan.stream, span)?;
                        let partial = self.compute_partial(ctx, &plan, &delta, span, None)?;
                        let Some(IncrState::Agg(rings)) = &mut self.incr else {
                            return Err(corrupt("aggregate ring state missing"));
                        };
                        rings.ring.push_back(partial);
                        rings.spans.push_back(span);
                    } else {
                        let mut pre = self.pre_of(ctx, &plan.stream, &plan.pre_plan, span)?;
                        pre.compact();
                        let Some(IncrState::Agg(rings)) = &mut self.incr else {
                            return Err(corrupt("aggregate ring state missing"));
                        };
                        rings.raw_ring.push_back(pre);
                        rings.spans.push_back(span);
                    }
                }
                Ok(())
            }
            (IncrMeta::Join { left, right, next_epoch }, Some(IncrementalPlan::Join(plan)))
                if self.mode == ExecutionMode::Incremental =>
            {
                for &(epoch, s, e) in left {
                    let mut pre = self.pre_of(ctx, &plan.left_stream, &plan.left_pre, (s, e))?;
                    pre.compact();
                    let Some(IncrState::Join(rings)) = &mut self.incr else {
                        return Err(corrupt("join ring state missing"));
                    };
                    rings.left.push_back((epoch, (s, e), pre));
                }
                for &(epoch, s, e) in right {
                    let mut pre =
                        self.pre_of(ctx, &plan.right_stream, &plan.right_pre, (s, e))?;
                    pre.compact();
                    let table = JoinHashTable::build(pre.column(plan.right_key), None);
                    let Some(IncrState::Join(rings)) = &mut self.incr else {
                        return Err(corrupt("join ring state missing"));
                    };
                    rings.right.push_back((epoch, (s, e), pre, table));
                }
                let Some(IncrState::Join(rings)) = &mut self.incr else {
                    return Err(corrupt("join ring state missing"));
                };
                rings.next_epoch = *next_epoch;
                // Recompute every cached pair (deterministic from the ring
                // chunks; epoch keys preserve the emission order).
                let mut pairs = HashMap::new();
                for (le, _, lc) in rings.left.iter() {
                    for (re, _, rc, table) in rings.right.iter() {
                        pairs.insert((*le, *re), compute_pair(&plan, lc, rc, table)?);
                    }
                }
                rings.pairs = pairs;
                Ok(())
            }
            // A factory that fell back to re-evaluation carries no ring
            // state; cursors were enough.
            (_, _) if self.mode == ExecutionMode::Reevaluate => Ok(()),
            _ => Err(corrupt("incremental plan shape changed")),
        }
    }

    /// Recovery helper: slice one saved basic-window span out of the
    /// recovered basket, refusing clamped slices — the saved window must
    /// still be fully present (see the cursor check in `restore`; ring
    /// spans can additionally fall below the retained base if retention
    /// metadata was lost).
    fn delta_of(
        &self,
        ctx: &FireContext<'_>,
        stream: &datacell_plan::StreamInput,
        span: WindowSpan,
    ) -> Result<Chunk> {
        let handle = ctx
            .baskets
            .get(&stream.object.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(stream.object.clone()))?;
        let basket = handle.read();
        if span.1 > basket.high_water() || span.0 < basket.first_oid() {
            return Err(EngineError::Wal(format!(
                "factory q{} ring window [{}, {}) outside recovered stream {} \
                 range [{}, {})",
                self.id,
                span.0,
                span.1,
                stream.object,
                basket.first_oid(),
                basket.high_water()
            )));
        }
        Ok(basket.slice(span.0, span.1))
    }

    /// Recovery helper: re-run one saved basic-window span through a
    /// pre-plan over the recovered basket.
    fn pre_of(
        &mut self,
        ctx: &FireContext<'_>,
        stream: &datacell_plan::StreamInput,
        pre_plan: &datacell_plan::LogicalPlan,
        span: WindowSpan,
    ) -> Result<Chunk> {
        let delta = self.delta_of(ctx, stream, span)?;
        let mut sources = ExecSources::new();
        sources.bind(&stream.binding, delta);
        self.bind_tables(ctx, &mut sources)?;
        execute(pre_plan, &sources).map_err(EngineError::Plan)
    }

    /// Output schema (names) of the query.
    pub fn output_names(&self) -> &[String] {
        &self.query.output_names
    }

    /// Output schema of the query as a [`Schema`].
    pub fn output_schema(&self) -> Schema {
        let names = self.query.plan.names();
        let types = self.query.plan.types();
        Schema::new(
            names
                .into_iter()
                .zip(types)
                .map(|(n, t)| datacell_storage::ColumnDef::new(n, t))
                .collect(),
        )
    }
}

/// Join one left ring chunk with one right ring (chunk, hash table) pair:
/// probe, gather, residual filter, optional partial aggregation. Shared by
/// live firing and recovery (which recomputes every cached pair).
fn compute_pair(
    plan: &IncrementalJoinPlan,
    lc: &Chunk,
    rc: &Chunk,
    table: &JoinHashTable,
) -> Result<PairCache> {
    use datacell_plan::eval_predicate;
    let probe = lc.column(plan.left_key);
    let (lp, roids) = table.probe(probe, None);
    let rbase = rc.column(plan.right_key).oid_base();
    let rp: Vec<usize> = roids.into_iter().map(|o| (o - rbase) as usize).collect();
    let mut cols = Vec::with_capacity(lc.arity() + rc.arity());
    for c in lc.columns() {
        cols.push(c.gather_positions(&lp));
    }
    for c in rc.columns() {
        cols.push(c.gather_positions(&rp));
    }
    let mut pairs = Chunk::new(cols).map_err(|e| EngineError::Plan(e.into()))?;
    if let Some(f) = &plan.pair_filter {
        let cand = if pairs.arity() == 0 {
            datacell_algebra::Candidates::empty()
        } else {
            datacell_algebra::Candidates::all(pairs.column(0))
        };
        let hits = eval_predicate(f, &pairs, &cand).map_err(EngineError::Plan)?;
        pairs = datacell_algebra::fetch_chunk(&pairs, &hits);
    }
    match &plan.agg {
        Some(agg) => Ok(PairCache::Agg(
            PartialAgg::compute(&pairs, &agg.group_exprs, &agg.aggs)
                .map_err(EngineError::Plan)?,
        )),
        None => Ok(PairCache::Rows(pairs)),
    }
}
