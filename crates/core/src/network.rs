//! Query-network introspection — the demo's "Query Network
//! Characteristics" pane: "we can monitor which query waits for which
//! stream, which baskets/columns it binds and how the various queries
//! relate to each other regarding their input/output properties" (§4).

use crate::factory::Factory;

/// One edge of the bipartite basket/query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkEdge {
    /// Source basket (stream) or table name.
    pub source: String,
    /// `"stream"` or `"table"`.
    pub kind: &'static str,
    /// Consuming query id.
    pub query: u64,
    /// Window annotation, if any.
    pub window: Option<String>,
}

/// The query network: who reads what.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryNetwork {
    /// All edges.
    pub edges: Vec<NetworkEdge>,
}

impl QueryNetwork {
    /// Build the network from the registered factories.
    pub fn from_factories<'a>(factories: impl Iterator<Item = &'a Factory>) -> Self {
        let mut edges = Vec::new();
        for f in factories {
            for s in &f.query.streams {
                edges.push(NetworkEdge {
                    source: s.object.clone(),
                    kind: "stream",
                    query: f.id,
                    window: s.window.as_ref().map(|w| w.to_string()),
                });
            }
            for (_, object) in &f.query.tables {
                edges.push(NetworkEdge {
                    source: object.clone(),
                    kind: "table",
                    query: f.id,
                    window: None,
                });
            }
        }
        QueryNetwork { edges }
    }

    /// Group queries into connected components by shared *stream* input:
    /// two queries land in the same partition iff they are linked by a chain
    /// of shared baskets. Table edges are ignored — tables are read-only at
    /// fire time, so sharing one never forces serialization.
    ///
    /// Partitions are the parallel executor's unit of scheduling: distinct
    /// partitions touch disjoint baskets and may fire concurrently.
    /// Returned groups are sorted by their smallest query id; ids within a
    /// group are ascending.
    pub fn stream_partitions(&self) -> Vec<Vec<u64>> {
        let mut qids: Vec<u64> = self.edges.iter().map(|e| e.query).collect();
        qids.sort_unstable();
        qids.dedup();
        let index_of: std::collections::HashMap<u64, usize> =
            qids.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        // Union-find over query indices.
        let mut parent: Vec<usize> = (0..qids.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut by_stream: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for e in self.edges.iter().filter(|e| e.kind == "stream") {
            let q = index_of[&e.query];
            match by_stream.entry(e.source.to_ascii_lowercase()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(q);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let (a, b) = (find(&mut parent, *slot.get()), find(&mut parent, q));
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<u64>> =
            std::collections::BTreeMap::new();
        for (i, &qid) in qids.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(qid);
        }
        groups.into_values().collect()
    }

    /// Queries reading `source`.
    pub fn consumers_of(&self, source: &str) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .edges
            .iter()
            .filter(|e| e.source.eq_ignore_ascii_case(source))
            .map(|e| e.query)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Render as an ASCII bipartite graph.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str("query network:\n");
        if self.edges.is_empty() {
            out.push_str("  (no continuous queries registered)\n");
            return out;
        }
        let mut sources: Vec<(&str, &'static str)> =
            self.edges.iter().map(|e| (e.source.as_str(), e.kind)).collect();
        sources.sort_unstable();
        sources.dedup();
        for (source, kind) in sources {
            out.push_str(&format!("  [{kind}] {source}\n"));
            for e in self.edges.iter().filter(|e| e.source == source) {
                match &e.window {
                    Some(w) => out.push_str(&format!("    └─▶ q{} {w}\n", e.query)),
                    None => out.push_str(&format!("    └─▶ q{}\n", e.query)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_renders() {
        let n = QueryNetwork::default();
        assert!(n.describe().contains("no continuous queries"));
        assert!(n.consumers_of("s").is_empty());
    }

    #[test]
    fn stream_partitions_group_by_shared_basket() {
        let edge = |source: &str, kind, query| NetworkEdge {
            source: source.into(),
            kind,
            query,
            window: None,
        };
        let n = QueryNetwork {
            edges: vec![
                // q1 and q3 share stream a; q2 alone on b; q4 joins b and c;
                // q5 on c → {q1,q3}, {q2,q4,q5}. Case differences must merge.
                edge("a", "stream", 1),
                edge("A", "stream", 3),
                edge("b", "stream", 2),
                edge("b", "stream", 4),
                edge("c", "stream", 4),
                edge("c", "stream", 5),
                // A shared table must NOT merge partitions.
                edge("dim", "table", 1),
                edge("dim", "table", 2),
            ],
        };
        assert_eq!(n.stream_partitions(), vec![vec![1, 3], vec![2, 4, 5]]);
        assert!(QueryNetwork::default().stream_partitions().is_empty());
    }

    #[test]
    fn consumers_deduplicated_and_sorted() {
        let n = QueryNetwork {
            edges: vec![
                NetworkEdge { source: "s".into(), kind: "stream", query: 2, window: None },
                NetworkEdge { source: "s".into(), kind: "stream", query: 1, window: None },
                NetworkEdge { source: "S".into(), kind: "stream", query: 2, window: None },
            ],
        };
        assert_eq!(n.consumers_of("s"), vec![1, 2]);
        let text = n.describe();
        assert!(text.contains("[stream] s"));
        assert!(text.contains("q1"));
    }
}
