//! Admission control: memory budgets and shed policies.
//!
//! An unbounded stream engine dies by OOM, not by crash: baskets pin
//! bytes until retirement, subscriber queues pin result chunks until a
//! client drains them. A [`MemoryBudget`] puts a ceiling on both and a
//! [`ShedPolicy`] decides what happens to the *next* PUSH once the
//! ceiling is hit — reject it with a retryable
//! [`EngineError::Overloaded`](crate::EngineError) (the server renders it
//! as the `OVERLOADED <retry-after-ms>` wire error), shed the oldest
//! queued result chunks to make room, or pause every receptor until usage
//! falls back below a hysteresis watermark.
//!
//! The budget is consulted on the ingest path only
//! ([`DataCell::push_rows`](crate::DataCell::push_rows) /
//! [`push_chunk`](crate::DataCell::push_chunk)); DDL, queries and result
//! draining always proceed — they are how the system gets *out* of
//! overload. Every shed is counted per cause in the metrics registry
//! (`datacell_admission_*`). The [`FaultPoint::AllocBudget`]
//! (`datacell_faults`) fault point forces the over-budget path
//! deterministically for chaos testing.

use std::fmt;
use std::str::FromStr;

/// What to do with a PUSH that would exceed the [`MemoryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Reject the push with a retryable overload error (wire:
    /// `OVERLOADED <retry-after-ms>`). The default — it is the only
    /// policy that never discards data already accepted.
    #[default]
    Reject,
    /// Shed the oldest queued result chunks (subscriber queues and the
    /// engine-internal pending-results buffers) to reclaim memory, then
    /// admit the push. Freshness-biased, like emitter overflow.
    DropOldest,
    /// Pause ingestion engine-wide: this push and every later one is
    /// rejected (retryable) until usage falls below the low watermark
    /// ([`MemoryBudget::low_watermark`]), then ingest resumes
    /// automatically. The hysteresis gap prevents flapping.
    PauseReceptors,
}

impl ShedPolicy {
    /// Canonical token (CLI / wire rendering).
    pub fn token(&self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::PauseReceptors => "pause-receptors",
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(ShedPolicy::Reject),
            "drop-oldest" => Ok(ShedPolicy::DropOldest),
            "pause-receptors" => Ok(ShedPolicy::PauseReceptors),
            other => Err(format!(
                "bad shed policy {other:?} (want reject|drop-oldest|pause-receptors)"
            )),
        }
    }
}

/// Memory ceiling the ingest path enforces (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Ceiling on bytes physically pinned by basket buffers (the sum of
    /// `Basket::buffer_byte_size`, i.e. including retired-but-uncompacted
    /// prefixes kept alive by live views).
    pub max_pinned_bytes: usize,
    /// Ceiling on result chunks queued across all subscriber emitters.
    pub max_emitter_chunks: usize,
    /// What happens to an over-budget push.
    pub policy: ShedPolicy,
    /// Backoff hint carried by overload rejections, in milliseconds.
    pub retry_after_ms: u64,
}

impl MemoryBudget {
    /// Default backoff hint for overload rejections.
    pub const DEFAULT_RETRY_AFTER_MS: u64 = 50;

    /// Budget bounding pinned basket bytes only (emitter occupancy
    /// unbounded), with the default retry-after hint.
    pub fn pinned_bytes(max: usize, policy: ShedPolicy) -> MemoryBudget {
        MemoryBudget {
            max_pinned_bytes: max,
            max_emitter_chunks: usize::MAX,
            policy,
            retry_after_ms: MemoryBudget::DEFAULT_RETRY_AFTER_MS,
        }
    }

    /// The resume threshold for [`ShedPolicy::PauseReceptors`]: 80% of
    /// the pinned-bytes ceiling. Ingest paused by overload resumes only
    /// once usage falls below this, so the engine does not flap at the
    /// exact ceiling.
    pub fn low_watermark(&self) -> usize {
        self.max_pinned_bytes - self.max_pinned_bytes / 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_policy_roundtrips() {
        for p in [ShedPolicy::Reject, ShedPolicy::DropOldest, ShedPolicy::PauseReceptors] {
            assert_eq!(p.token().parse::<ShedPolicy>().unwrap(), p);
        }
        assert_eq!("REJECT".parse::<ShedPolicy>().unwrap(), ShedPolicy::Reject);
        assert!("sometimes".parse::<ShedPolicy>().is_err());
    }

    #[test]
    fn low_watermark_is_80_percent() {
        let b = MemoryBudget::pinned_bytes(1000, ShedPolicy::PauseReceptors);
        assert_eq!(b.low_watermark(), 800);
        assert_eq!(b.max_emitter_chunks, usize::MAX);
        assert_eq!(b.retry_after_ms, MemoryBudget::DEFAULT_RETRY_AFTER_MS);
    }
}
