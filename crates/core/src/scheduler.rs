//! The DataCell scheduler: a Petri-net execution model.
//!
//! "The execution of the factories is orchestrated by the DataCell
//! scheduler, which implements a Petri-net model. The firing condition is
//! aligned to arrival of events; once there are tuples that may be relevant
//! to a waiting query, we trigger its evaluation." (paper §3)
//!
//! Places are baskets (their marking = buffered tuples / window
//! completeness), transitions are factories. A transition is *enabled* when
//! every input place holds a complete next slide; firing consumes the slide
//! (advances cursors, possibly retires tuples) and deposits the result in
//! the query's output buffer.

use std::collections::HashMap;

use datacell_storage::Oid;

use crate::factory::{Factory, FireContext};

/// A snapshot of the Petri net: which transitions are currently enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetState {
    /// `(query id, enabled)` for every registered factory.
    pub transitions: Vec<(u64, bool)>,
    /// `(basket name, buffered tuples)` for every place.
    pub places: Vec<(String, usize)>,
}

/// The scheduler: repeatedly fires enabled transitions.
///
/// The run loop is deterministic (round-robin over query ids) so results
/// are reproducible — crucial for the equivalence tests between execution
/// modes.
#[derive(Debug, Default)]
pub struct Scheduler {
    /// Total transition firings performed.
    pub total_firings: u64,
    /// Rounds executed by `run_until_idle`.
    pub rounds: u64,
}

impl Scheduler {
    /// New idle scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire every enabled transition once, in query-id order. Returns how
    /// many fired, pushing each produced chunk through `sink`.
    pub fn step(
        &mut self,
        factories: &mut [&mut Factory],
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, datacell_storage::Chunk),
    ) -> crate::error::Result<usize> {
        let mut fired = 0;
        for factory in factories.iter_mut() {
            if factory.enabled(ctx) {
                if let Some(chunk) = factory.fire(ctx)? {
                    sink(factory.id, chunk);
                }
                fired += 1;
                self.total_firings += 1;
            }
        }
        Ok(fired)
    }

    /// Run until no transition is enabled (quiescence).
    pub fn run_until_idle(
        &mut self,
        factories: &mut [&mut Factory],
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, datacell_storage::Chunk),
    ) -> crate::error::Result<u64> {
        let mut total = 0u64;
        loop {
            let fired = self.step(factories, ctx, sink)?;
            self.rounds += 1;
            if fired == 0 {
                return Ok(total);
            }
            total += fired as u64;
        }
    }

    /// Compute the retirement bound for each basket: the minimum OID still
    /// needed by any consumer ("once a tuple has been seen by all relevant
    /// queries/operators, it is dropped from its basket").
    pub fn retirement_bounds(
        factories: &[&mut Factory],
        stream_objects: &HashMap<String, Vec<(u64, String)>>,
    ) -> HashMap<String, Oid> {
        let mut bounds: HashMap<String, Option<Oid>> = HashMap::new();
        for (object, consumers) in stream_objects {
            let mut min_needed: Option<Oid> = None;
            for (qid, binding) in consumers {
                if let Some(f) = factories.iter().find(|f| f.id == *qid) {
                    if let Some(needed) = f.needed_from(binding) {
                        min_needed =
                            Some(min_needed.map_or(needed, |m: Oid| m.min(needed)));
                    }
                }
            }
            bounds.insert(object.clone(), min_needed);
        }
        bounds
            .into_iter()
            .filter_map(|(k, v)| v.map(|b| (k, b)))
            .collect()
    }
}
