//! The DataCell scheduler: a Petri-net execution model over basket
//! partitions, with an optional multicore worker pool.
//!
//! "The execution of the factories is orchestrated by the DataCell
//! scheduler, which implements a Petri-net model. The firing condition is
//! aligned to arrival of events; once there are tuples that may be relevant
//! to a waiting query, we trigger its evaluation." (paper §3)
//!
//! Places are baskets (their marking = buffered tuples / window
//! completeness), transitions are factories. A transition is *enabled* when
//! every input place holds a complete next slide; firing consumes the slide
//! (advances cursors, possibly retires tuples) and deposits the result in
//! the query's output buffer.
//!
//! # Partitions
//!
//! The scheduler owns every factory, grouped into [`Partition`]s — the
//! connected components of the query network under the "shares an input
//! basket" relation (see [`QueryNetwork::stream_partitions`]). Two factories
//! in different partitions touch disjoint baskets by construction, so whole
//! partitions can fire concurrently without coordination; factories *inside*
//! a partition always fire in ascending query-id order, keeping execution
//! deterministic per query.
//!
//! # Worker pool
//!
//! With `config.workers > 1`, [`Scheduler::step`] and
//! [`Scheduler::run_until_idle`] fan the partitions out over a pool of
//! `std::thread` workers; result chunks return through the workers' join
//! handles and are delivered to the sink in a deterministic per-query order. With
//! `workers = 1` (the default) execution is exactly the classic serial
//! round-robin: every enabled factory fires once per round in global
//! query-id order.
//!
//! # Watermark retirement
//!
//! Basket retirement ("once a tuple has been seen by all relevant
//! queries/operators, it is dropped from its basket") is per-partition: each
//! partition retires its own baskets up to the minimum OID still needed by
//! any of its factories. Because a basket belongs to exactly one partition,
//! concurrent workers never race on retirement.

use std::collections::BTreeMap;

use datacell_plan::SharedNodeKind;
use datacell_storage::{Chunk, Oid};

use crate::factory::{Factory, FireContext};
use crate::network::QueryNetwork;
use crate::shared::{PassCache, SharedPlanDag};

/// A snapshot of the Petri net: which transitions are currently enabled,
/// how full the places are, and how the net decomposes into partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetState {
    /// `(query id, enabled)` for every registered factory.
    pub transitions: Vec<(u64, bool)>,
    /// `(basket name, buffered tuples)` for every place.
    pub places: Vec<(String, usize)>,
    /// Query ids per partition (the parallel executor's scheduling units).
    pub partitions: Vec<Vec<u64>>,
}

/// One connected component of the query network: a set of factories closed
/// under basket sharing, plus the baskets they consume. The unit of
/// parallel scheduling.
pub struct Partition {
    /// Factories in ascending query-id order (deterministic firing order).
    factories: BTreeMap<u64, Factory>,
    /// Lowercased stream objects consumed by this partition — the baskets
    /// whose retirement watermark this partition owns.
    baskets: Vec<String>,
    /// Per-pass shared-subplan memo: within one round, factories sharing a
    /// subplan fingerprint evaluate it once. Partition-local, so parallel
    /// workers never contend on it.
    cache: PassCache,
}

impl Partition {
    fn from_factories(factories: BTreeMap<u64, Factory>) -> Self {
        let mut baskets: Vec<String> = factories
            .values()
            .flat_map(|f| f.query.streams.iter().map(|s| s.object.to_ascii_lowercase()))
            .collect();
        baskets.sort_unstable();
        baskets.dedup();
        Partition { factories, baskets, cache: PassCache::default() }
    }

    /// Query ids in this partition, ascending.
    pub fn query_ids(&self) -> Vec<u64> {
        self.factories.keys().copied().collect()
    }

    /// One deterministic round: fire every enabled factory once in
    /// query-id order, then advance the retirement watermarks. Produced
    /// chunks are appended to `out`; returns how many factories fired.
    fn step_round(
        &mut self,
        ctx: &FireContext<'_>,
        out: &mut Vec<(u64, Chunk)>,
    ) -> crate::error::Result<usize> {
        let mut fired = 0;
        self.cache.begin_round();
        let Partition { factories, cache, .. } = self;
        for factory in factories.values_mut() {
            if factory.enabled(ctx) {
                let chunk = factory.fire(ctx, Some(&mut *cache))?;
                // Durable engines make the post-fire position durable
                // *before* the chunk reaches any subscriber: a restart
                // neither re-fires this window nor skips the next.
                if let Some(wal) = ctx.wal {
                    wal.log_fire(factory.id, &factory.state())?;
                }
                if let Some(chunk) = chunk {
                    out.push((factory.id, chunk));
                }
                fired += 1;
            }
        }
        // Retire even on an idle round: the watermark can move without a
        // firing (e.g. a lagging consumer was just deregistered), and the
        // serial executor retires unconditionally every round.
        if ctx.config.retire_consumed {
            self.retire(ctx);
        }
        Ok(fired)
    }

    /// Fire rounds until no factory in this partition is enabled. Returns
    /// `(total firings, rounds)`.
    fn run_until_idle(
        &mut self,
        ctx: &FireContext<'_>,
        out: &mut Vec<(u64, Chunk)>,
    ) -> crate::error::Result<(u64, u64)> {
        let (mut total, mut rounds) = (0u64, 0u64);
        loop {
            let fired = self.step_round(ctx, out)?;
            rounds += 1;
            if fired == 0 {
                return Ok((total, rounds));
            }
            total += fired as u64;
        }
    }

    /// Watermark retirement: drop each consumed basket's prefix up to the
    /// minimum OID any of this partition's factories still needs. The
    /// partition is the only writer of its baskets' watermarks, so this is
    /// race-free even when other partitions run concurrently.
    fn retire(&self, ctx: &FireContext<'_>) {
        for name in &self.baskets {
            let Some(handle) = ctx.baskets.get(name) else {
                continue;
            };
            let mut min_needed: Option<Oid> = None;
            for f in self.factories.values() {
                for s in &f.query.streams {
                    if s.object.eq_ignore_ascii_case(name) {
                        // Durable engines retire against the replay-aware
                        // bound so recovery can rebuild incremental rings
                        // from the retained (and still-logged) tail.
                        let needed = if ctx.wal.is_some() {
                            f.durable_needed_from(&s.binding)
                        } else {
                            f.needed_from(&s.binding)
                        };
                        if let Some(n) = needed {
                            min_needed = Some(min_needed.map_or(n, |m| m.min(n)));
                        }
                    }
                }
            }
            if let Some(bound) = min_needed {
                handle.write().retire_before(bound);
            }
        }
    }
}

/// The scheduler: owns the factories, partitions them by shared baskets,
/// and repeatedly fires enabled transitions — serially or on a worker pool.
#[derive(Default)]
pub struct Scheduler {
    partitions: Vec<Partition>,
    /// Refcounted DAG of common subplan prefixes across all registered
    /// queries; REGISTER inserts, DEREGISTER reclaims.
    dag: SharedPlanDag,
    /// Per-pass memo for serial execution (one round spans every
    /// partition; fingerprints embed the stream, so entries never
    /// cross-wire streams).
    serial_cache: PassCache,
    /// Total transition firings performed.
    pub total_firings: u64,
    /// Rounds executed (in parallel mode: the longest partition's rounds).
    pub rounds: u64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("partitions", &self.partition_ids())
            .field("total_firings", &self.total_firings)
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl Scheduler {
    /// New idle scheduler with no factories.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- factory ownership -------------------------------------------

    /// Register a factory and recompute the partitioning. The factory's
    /// shareable subplan prefix is folded into the shared DAG, and every
    /// factory's sharing fan-out is re-stamped.
    pub fn insert(&mut self, factory: Factory) {
        self.dag.insert_query(factory.id, &factory.shape);
        let mut pool = self.drain_factories();
        pool.insert(factory.id, factory);
        self.rebuild(pool);
    }

    /// Deregister the factory of query `id`, recomputing the partitioning.
    /// Shared DAG nodes whose refcount drops to zero are reclaimed.
    pub fn remove(&mut self, id: u64) -> Option<Factory> {
        self.dag.remove_query(id);
        let mut pool = self.drain_factories();
        let removed = pool.remove(&id);
        self.rebuild(pool);
        removed
    }

    /// The factory of query `id`.
    pub fn factory(&self, id: u64) -> Option<&Factory> {
        self.partitions.iter().find_map(|p| p.factories.get(&id))
    }

    /// Mutable access to the factory of query `id`.
    pub fn factory_mut(&mut self, id: u64) -> Option<&mut Factory> {
        self.partitions.iter_mut().find_map(|p| p.factories.get_mut(&id))
    }

    /// All factories in ascending query-id order.
    pub fn factories(&self) -> Vec<&Factory> {
        let mut v: Vec<&Factory> =
            self.partitions.iter().flat_map(|p| p.factories.values()).collect();
        v.sort_by_key(|f| f.id);
        v
    }

    /// Number of registered factories.
    pub fn factory_count(&self) -> usize {
        self.partitions.iter().map(|p| p.factories.len()).sum()
    }

    /// Number of partitions (upper bound on usable parallelism).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Query ids per partition, in partition order.
    pub fn partition_ids(&self) -> Vec<Vec<u64>> {
        self.partitions.iter().map(Partition::query_ids).collect()
    }

    fn drain_factories(&mut self) -> BTreeMap<u64, Factory> {
        let mut pool = BTreeMap::new();
        for p in self.partitions.drain(..) {
            pool.extend(p.factories);
        }
        pool
    }

    fn rebuild(&mut self, mut pool: BTreeMap<u64, Factory>) {
        let groups =
            QueryNetwork::from_factories(pool.values()).stream_partitions();
        let mut partitions = Vec::with_capacity(groups.len());
        for group in groups {
            let mut factories = BTreeMap::new();
            for qid in group {
                if let Some(f) = pool.remove(&qid) {
                    factories.insert(qid, f);
                }
            }
            if !factories.is_empty() {
                partitions.push(Partition::from_factories(factories));
            }
        }
        // Defensive: anything the network analysis missed becomes its own
        // partition (cannot happen for continuous queries, which always
        // read at least one stream).
        for (qid, f) in pool {
            partitions.push(Partition::from_factories(BTreeMap::from([(qid, f)])));
        }
        self.partitions = partitions;
        // Stamp every factory with its current sharing fan-out: the cache
        // is consulted only for fingerprints at least two live queries
        // share, so unshared queries keep their direct path.
        for p in &mut self.partitions {
            for f in p.factories.values_mut() {
                f.sharing_select =
                    f.shape.select.as_ref().map_or(0, |k| self.dag.refs(&k.text)).max(1);
                f.sharing_agg =
                    f.shape.agg.as_ref().map_or(0, |k| self.dag.refs(&k.text)).max(1);
            }
        }
    }

    // ---- shared-subplan introspection --------------------------------

    /// `(total nodes, shared nodes, cache hits, cache misses)` of the
    /// shared-subplan layer. Hits are evaluations saved by sharing.
    pub fn shared_stats(&self) -> (usize, usize, u64, u64) {
        let mut hits = self.serial_cache.hits;
        let mut misses = self.serial_cache.misses;
        for p in &self.partitions {
            hits += p.cache.hits;
            misses += p.cache.misses;
        }
        (self.dag.node_count(), self.dag.shared_node_count(), hits, misses)
    }

    /// The `(kind, canonical text, refcount)` rows of the shared nodes
    /// query `qid` participates in (the EXPLAIN "shared subplans"
    /// section) — window, then select, then group-agg.
    pub fn sharing_of(&self, qid: u64) -> Vec<(SharedNodeKind, String, usize)> {
        self.dag.nodes_of(qid)
    }

    // ---- execution ---------------------------------------------------

    /// Fire every enabled transition once, then retire consumed basket
    /// prefixes. Returns how many fired, pushing each produced chunk
    /// through `sink`. Serial with `config.workers <= 1`, otherwise one
    /// parallel round across partitions.
    pub fn step(
        &mut self,
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, Chunk),
    ) -> crate::error::Result<usize> {
        let fired = if self.effective_workers(ctx) <= 1 {
            self.step_serial(ctx, sink)?
        } else {
            self.dispatch_parallel(ctx, sink, false)?.0 as usize
        };
        self.rounds += 1;
        self.total_firings += fired as u64;
        Ok(fired)
    }

    /// Run until no transition is enabled (quiescence); returns total
    /// firings. In parallel mode each worker drives its partitions to
    /// quiescence independently — no cross-partition barrier.
    pub fn run_until_idle(
        &mut self,
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, Chunk),
    ) -> crate::error::Result<u64> {
        if self.effective_workers(ctx) <= 1 {
            let mut total = 0u64;
            loop {
                let fired = self.step_serial(ctx, sink)?;
                self.rounds += 1;
                self.total_firings += fired as u64;
                if fired == 0 {
                    return Ok(total);
                }
                total += fired as u64;
            }
        }
        let (fired, rounds) = self.dispatch_parallel(ctx, sink, true)?;
        self.rounds += rounds;
        self.total_firings += fired;
        Ok(fired)
    }

    /// One retirement pass over every partition (recovery housekeeping:
    /// re-trims replayed basket prefixes that were already retired before
    /// the restart).
    pub(crate) fn retire_all(&self, ctx: &FireContext<'_>) {
        if ctx.config.retire_consumed {
            for p in &self.partitions {
                p.retire(ctx);
            }
        }
    }

    /// Introspection snapshot of the whole net.
    pub fn net_state(&self, ctx: &FireContext<'_>) -> NetState {
        let transitions =
            self.factories().iter().map(|f| (f.id, f.enabled(ctx))).collect();
        let mut places: Vec<(String, usize)> = ctx
            .baskets
            .iter()
            .map(|(name, b)| (name.clone(), b.read().len()))
            .collect();
        places.sort();
        NetState { transitions, places, partitions: self.partition_ids() }
    }

    fn effective_workers(&self, ctx: &FireContext<'_>) -> usize {
        ctx.config.workers.max(1).min(self.partitions.len().max(1))
    }

    /// Classic serial semantics: all enabled factories fire once in global
    /// query-id order, then every partition retires its baskets.
    fn step_serial(
        &mut self,
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, Chunk),
    ) -> crate::error::Result<usize> {
        self.serial_cache.begin_round();
        let Scheduler { partitions, serial_cache, .. } = self;
        let mut all: Vec<&mut Factory> = partitions
            .iter_mut()
            .flat_map(|p| p.factories.values_mut())
            .collect();
        all.sort_by_key(|f| f.id);
        let mut fired = 0;
        for factory in all {
            if factory.enabled(ctx) {
                let chunk = factory.fire(ctx, Some(&mut *serial_cache))?;
                // Fire record before delivery — see Partition::step_round.
                if let Some(wal) = ctx.wal {
                    wal.log_fire(factory.id, &factory.state())?;
                }
                if let Some(chunk) = chunk {
                    sink(factory.id, chunk);
                }
                fired += 1;
            }
        }
        if ctx.config.retire_consumed {
            for p in &self.partitions {
                p.retire(ctx);
            }
        }
        Ok(fired)
    }

    /// Worker-pool execution: partitions are split into contiguous slices,
    /// one `std::thread` worker per slice; each worker returns its result
    /// chunks through its join handle and they are re-ordered by query id
    /// before hitting the sink, so per-query output is identical to serial
    /// execution regardless of worker count.
    ///
    /// Workers are scoped to this call (spawned fresh each dispatch) —
    /// that is what lets them borrow the partitions and context directly.
    /// The spawn cost is amortized best by `run_until_idle`, where each
    /// worker drives its partitions through many rounds per dispatch.
    fn dispatch_parallel(
        &mut self,
        ctx: &FireContext<'_>,
        sink: &mut dyn FnMut(u64, Chunk),
        until_idle: bool,
    ) -> crate::error::Result<(u64, u64)> {
        let workers = self.effective_workers(ctx);
        let per_worker = self.partitions.len().div_ceil(workers);
        type WorkerOut = crate::error::Result<(u64, u64, Vec<(u64, Chunk)>)>;
        let results: Vec<WorkerOut> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for slice in self.partitions.chunks_mut(per_worker) {
                handles.push(scope.spawn(move || -> WorkerOut {
                    let mut out = Vec::new();
                    let (mut fired, mut rounds) = (0u64, 0u64);
                    for partition in slice {
                        if until_idle {
                            let (f, r) = partition.run_until_idle(ctx, &mut out)?;
                            fired += f;
                            rounds = rounds.max(r);
                        } else {
                            fired += partition.step_round(ctx, &mut out)? as u64;
                            rounds = rounds.max(1);
                        }
                    }
                    Ok((fired, rounds, out))
                }));
            }
            handles
                .into_iter()
                // lint:allow(panic-freedom): a worker panic is a scheduler bug; propagating it beats silently losing the slice
                .map(|h| h.join().expect("scheduler worker panicked"))
                .collect()
        });
        // Deliver results grouped by query id. Each query lives in exactly
        // one partition, so its chunks arrive already in firing order; the
        // stable sort only normalizes the interleaving *across* workers.
        let (mut fired, mut rounds) = (0u64, 0u64);
        let mut produced: Vec<(u64, Chunk)> = Vec::new();
        for res in results {
            let (f, r, out) = res?;
            fired += f;
            rounds = rounds.max(r);
            produced.extend(out);
        }
        produced.sort_by_key(|(qid, _)| *qid);
        for (qid, chunk) in produced {
            sink(qid, chunk);
        }
        Ok((fired, rounds))
    }
}
