//! The DataCell engine facade: catalog + baskets + factories + scheduler.
//!
//! This is the programmatic surface of the whole system (paper Figure 1):
//! DDL and one-time queries via [`DataCell::execute`], continuous queries
//! via [`DataCell::register_query`], stream ingestion via
//! [`DataCell::push_rows`] (or threaded [`crate::receptor::Receptor`]s),
//! and event-driven evaluation via [`DataCell::step`] /
//! [`DataCell::run_until_idle`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use datacell_plan::{compile, execute, Binder, ExecSources, ExecutionMode};
use datacell_sql::{parse_statement, Statement};
use datacell_storage::{Catalog, Chunk, Row, Schema};
use parking_lot::RwLock;

use crate::basket::Basket;
use crate::config::DataCellConfig;
use crate::emitter::{channel, Emitter, EmitterSender};
use crate::error::{EngineError, Result};
use crate::factory::{BasketHandle, Factory, FireContext};
use crate::network::QueryNetwork;
use crate::scheduler::{NetState, Scheduler};
use crate::stats::{BasketStats, EngineStats, QueryStats};

/// Outcome of [`DataCell::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Object created.
    Created(String),
    /// Object dropped.
    Dropped(String),
    /// Rows inserted.
    Inserted(usize),
    /// One-time query result: column names plus rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Result data.
        chunk: Chunk,
    },
}

/// Identifier of a registered continuous query.
pub type QueryId = u64;

/// The DataCell instance.
pub struct DataCell {
    catalog: Catalog,
    baskets: HashMap<String, BasketHandle>,
    results: HashMap<QueryId, VecDeque<Chunk>>,
    subscribers: HashMap<QueryId, Vec<EmitterSender>>,
    /// Chunks dropped by bounded subscriber queues (drop-oldest overflow).
    dropped_chunks: u64,
    /// Owns every factory, grouped into basket-partitions.
    scheduler: Scheduler,
    config: DataCellConfig,
    next_qid: QueryId,
}

impl Default for DataCell {
    fn default() -> Self {
        DataCell::new(DataCellConfig::default())
    }
}

impl DataCell {
    /// Create an engine with the given configuration.
    pub fn new(config: DataCellConfig) -> Self {
        DataCell {
            catalog: Catalog::new(),
            baskets: HashMap::new(),
            results: HashMap::new(),
            subscribers: HashMap::new(),
            dropped_chunks: 0,
            scheduler: Scheduler::new(),
            config,
            next_qid: 1,
        }
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current configuration.
    pub fn config(&self) -> &DataCellConfig {
        &self.config
    }

    /// Mutate configuration knobs (affects subsequent firings).
    pub fn config_mut(&mut self) -> &mut DataCellConfig {
        &mut self.config
    }

    // ---- DDL / DML / one-time queries ---------------------------------

    /// Execute a single SQL statement: `CREATE TABLE`, `CREATE STREAM`,
    /// `DROP`, `INSERT`, or a one-time `SELECT`.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                let schema = spec_schema(&columns);
                self.catalog.create_table(&name, schema)?;
                Ok(ExecOutcome::Created(name))
            }
            Statement::CreateStream { name, columns } => {
                let schema = spec_schema(&columns);
                self.catalog.create_stream(&name, schema.clone())?;
                self.baskets.insert(
                    name.to_ascii_lowercase(),
                    Arc::new(RwLock::new(Basket::new(&name, schema))),
                );
                Ok(ExecOutcome::Created(name))
            }
            Statement::Drop { name } => {
                self.catalog.drop_entry(&name)?;
                self.baskets.remove(&name.to_ascii_lowercase());
                Ok(ExecOutcome::Dropped(name))
            }
            Statement::Insert { table, rows } => {
                let mut converted: Vec<Row> = Vec::with_capacity(rows.len());
                for row in &rows {
                    converted.push(
                        row.iter()
                            .map(datacell_plan::literal_to_value)
                            .collect::<datacell_plan::Result<Row>>()?,
                    );
                }
                if self.catalog.is_stream(&table) {
                    Ok(ExecOutcome::Inserted(self.push_rows(&table, &converted)?))
                } else {
                    let handle = self.catalog.table(&table)?;
                    let n = handle.write().insert_rows(&converted)?;
                    Ok(ExecOutcome::Inserted(n))
                }
            }
            Statement::Select(stmt) => {
                let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
                let compiled = compile(sql, bound)?;
                // One-time evaluation: tables snapshot; streams read their
                // current basket contents without consuming. Windows only
                // make sense continuously.
                for s in &compiled.streams {
                    if s.window.is_some() {
                        return Err(EngineError::InvalidStatement(
                            "windowed queries must be registered as continuous queries"
                                .into(),
                        ));
                    }
                }
                let mut sources = ExecSources::new();
                for s in &compiled.streams {
                    let basket = self
                        .baskets
                        .get(&s.object.to_ascii_lowercase())
                        .ok_or_else(|| EngineError::UnknownStream(s.object.clone()))?;
                    sources.bind(&s.binding, basket.read().contents());
                }
                for (binding, object) in &compiled.tables {
                    let handle = self.catalog.table(object)?;
                    let snap = handle.read().scan();
                    sources.bind(binding, snap);
                }
                let chunk = execute(&compiled.plan, &sources).map_err(EngineError::Plan)?;
                Ok(ExecOutcome::Rows { names: compiled.output_names, chunk })
            }
        }
    }

    /// Run a `;`-separated script of statements.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = datacell_sql::parse_script(script)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute(&stmt.to_string())?);
        }
        Ok(out)
    }

    // ---- continuous queries --------------------------------------------

    /// Register a continuous query in the engine's default mode.
    pub fn register_query(&mut self, sql: &str) -> Result<QueryId> {
        self.register_query_with_mode(sql, self.config.default_mode)
    }

    /// Register a continuous query with an explicit execution mode.
    pub fn register_query_with_mode(
        &mut self,
        sql: &str,
        mode: ExecutionMode,
    ) -> Result<QueryId> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(EngineError::InvalidStatement(format!(
                    "only SELECT can be registered as a continuous query, got {other}"
                )))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        if !compiled.is_continuous() {
            return Err(EngineError::InvalidStatement(
                "query reads no stream; run it with execute() instead".into(),
            ));
        }
        let id = self.next_qid;
        self.next_qid += 1;
        let factory = Factory::new(id, compiled, mode, &self.baskets, &self.catalog)?;
        self.scheduler.insert(factory);
        self.results.insert(id, VecDeque::new());
        Ok(id)
    }

    /// Remove a continuous query from the network.
    pub fn deregister_query(&mut self, id: QueryId) -> Result<()> {
        self.scheduler
            .remove(id)
            .map(|_| {
                self.results.remove(&id);
                self.subscribers.remove(&id);
            })
            .ok_or(EngineError::UnknownQuery(id))
    }

    /// Pause / resume one query (paper §4, "Pause and Resume").
    pub fn set_query_paused(&mut self, id: QueryId, paused: bool) -> Result<()> {
        self.scheduler
            .factory_mut(id)
            .map(|f| f.paused = paused)
            .ok_or(EngineError::UnknownQuery(id))
    }

    /// Pause / resume one stream's ingestion.
    pub fn set_stream_paused(&mut self, stream: &str, paused: bool) -> Result<()> {
        self.baskets
            .get(&stream.to_ascii_lowercase())
            .map(|b| b.write().set_paused(paused))
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))
    }

    /// The effective execution mode of a query.
    pub fn query_mode(&self, id: QueryId) -> Result<ExecutionMode> {
        self.scheduler
            .factory(id)
            .map(|f| f.mode)
            .ok_or(EngineError::UnknownQuery(id))
    }

    // ---- ingestion -----------------------------------------------------

    /// Append rows to a stream's basket. Returns how many were accepted
    /// (0 when the stream is paused).
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize> {
        let basket = self
            .baskets
            .get(&stream.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))?;
        Ok(basket.write().push_rows(rows)?)
    }

    /// Append a columnar chunk to a stream's basket (bulk receptor path).
    pub fn push_chunk(&mut self, stream: &str, chunk: &Chunk) -> Result<usize> {
        let basket = self
            .baskets
            .get(&stream.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))?;
        Ok(basket.write().push_chunk(chunk)?)
    }

    /// Shared handle to a stream's basket (for receptor threads).
    pub fn basket(&self, stream: &str) -> Result<BasketHandle> {
        self.baskets
            .get(&stream.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))
    }

    // ---- scheduling ------------------------------------------------------

    /// Split the engine into the three pieces every scheduling entry point
    /// needs: the scheduler, a fire context over the shared state, and the
    /// result-delivery sink (subscriber fan-out + pending-results queue).
    fn with_executor<R>(
        &mut self,
        run: impl FnOnce(
            &mut Scheduler,
            &FireContext<'_>,
            &mut dyn FnMut(QueryId, Chunk),
        ) -> R,
    ) -> R {
        let ctx = FireContext {
            baskets: &self.baskets,
            catalog: &self.catalog,
            config: &self.config,
        };
        let results = &mut self.results;
        let results_cap = self.config.results_capacity;
        let subscribers = &mut self.subscribers;
        let dropped_chunks = &mut self.dropped_chunks;
        let mut sink = |qid: QueryId, mut chunk: Chunk| {
            // Result chunks sit in subscriber queues / the pending buffer
            // indefinitely; detach pass-through views from the basket
            // buffers once (no-op for the usual fresh aggregation output)
            // so a slow consumer pins one window, not whole buffer
            // generations, and ingestion keeps its in-place append path.
            // The per-subscriber clones below stay O(1) buffer shares.
            chunk.compact();
            if let Some(subs) = subscribers.get_mut(&qid) {
                subs.retain(|tx| match tx.send(chunk.clone()) {
                    Ok(dropped) => {
                        *dropped_chunks += dropped as u64;
                        true
                    }
                    Err(_) => false,
                });
            }
            let pending = results.entry(qid).or_default();
            pending.push_back(chunk);
            if let Some(cap) = results_cap {
                while pending.len() > cap.max(1) {
                    pending.pop_front();
                }
            }
        };
        run(&mut self.scheduler, &ctx, &mut sink)
    }

    /// Fire every enabled factory once; returns how many fired. Runs on the
    /// scheduler's worker pool when `config.workers > 1` and the query
    /// network has more than one partition. Consumed basket prefixes are
    /// retired by the scheduler's per-partition watermark protocol.
    pub fn step(&mut self) -> Result<usize> {
        self.with_executor(|scheduler, ctx, sink| scheduler.step(ctx, sink))
    }

    /// Run the scheduler until quiescent; returns total firings. In
    /// parallel mode each worker drives its basket partitions to quiescence
    /// independently.
    pub fn run_until_idle(&mut self) -> Result<u64> {
        self.with_executor(|scheduler, ctx, sink| scheduler.run_until_idle(ctx, sink))
    }

    // ---- results ----------------------------------------------------------

    /// Take all pending result chunks of a query.
    pub fn take_results(&mut self, id: QueryId) -> Result<Vec<Chunk>> {
        if self.scheduler.factory(id).is_none() && !self.results.contains_key(&id) {
            return Err(EngineError::UnknownQuery(id));
        }
        Ok(self
            .results
            .get_mut(&id)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default())
    }

    /// The most recent result chunk, discarding older pending ones.
    pub fn latest_result(&mut self, id: QueryId) -> Result<Option<Chunk>> {
        Ok(self.take_results(id)?.pop())
    }

    /// Subscribe an emitter to a query's future results. The subscriber
    /// queue is bounded by [`DataCellConfig::emitter_capacity`]; overflow
    /// drops the oldest chunks (counted in
    /// [`EngineStats::dropped_chunks`]).
    pub fn subscribe(&mut self, id: QueryId) -> Result<Emitter> {
        if self.scheduler.factory(id).is_none() {
            return Err(EngineError::UnknownQuery(id));
        }
        let (tx, emitter) = channel(id, self.config.emitter_capacity);
        self.subscribers.entry(id).or_default().push(tx);
        Ok(emitter)
    }

    /// Disconnect every subscriber: each live [`Emitter`] drains what it
    /// has buffered and then observes end-of-stream. The shutdown hook a
    /// server frontend calls before dropping the engine, so blocked
    /// clients wake up instead of hanging on a dead queue.
    pub fn shutdown(&mut self) {
        self.subscribers.clear();
    }

    /// Output column names of a query.
    pub fn output_names(&self, id: QueryId) -> Result<Vec<String>> {
        self.scheduler
            .factory(id)
            .map(|f| f.output_names().to_vec())
            .ok_or(EngineError::UnknownQuery(id))
    }

    /// Output schema of a query.
    pub fn output_schema(&self, id: QueryId) -> Result<Schema> {
        self.scheduler
            .factory(id)
            .map(|f| f.output_schema())
            .ok_or(EngineError::UnknownQuery(id))
    }

    // ---- monitoring --------------------------------------------------------

    /// Plan inspection for a registered query (one-time vs continuous vs
    /// incremental shapes).
    pub fn explain(&self, id: QueryId) -> Result<String> {
        let f = self.scheduler.factory(id).ok_or(EngineError::UnknownQuery(id))?;
        let mut text = f.query.explain_modes();
        text.push_str(&format!(
            "effective mode: {}\n",
            match f.mode {
                ExecutionMode::Reevaluate => "full re-evaluation",
                ExecutionMode::Incremental => "incremental",
            }
        ));
        if let Some(note) = &f.mode_note {
            text.push_str(&format!("note: {note}\n"));
        }
        Ok(text)
    }

    /// Plan inspection for an arbitrary SELECT without registering it.
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(EngineError::InvalidStatement(format!(
                    "EXPLAIN supports SELECT only, got {other}"
                )))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        Ok(compiled.explain_modes())
    }

    /// The query network (demo's network pane).
    pub fn network(&self) -> QueryNetwork {
        QueryNetwork::from_factories(self.scheduler.factories().into_iter())
    }

    /// Petri-net snapshot: enabled transitions, place markings, and the
    /// partition decomposition the parallel executor schedules over.
    pub fn net_state(&self) -> NetState {
        let ctx = FireContext {
            baskets: &self.baskets,
            catalog: &self.catalog,
            config: &self.config,
        };
        self.scheduler.net_state(&ctx)
    }

    /// Whole-engine statistics snapshot (demo's analysis pane).
    pub fn stats(&self) -> EngineStats {
        let mut baskets: Vec<BasketStats> = self
            .baskets
            .values()
            .map(|b| {
                let b = b.read();
                BasketStats {
                    name: b.name().to_owned(),
                    arrived: b.arrived(),
                    retired: b.retired(),
                    buffered: b.len(),
                    bytes: b.byte_size(),
                    buffer_bytes: b.buffer_byte_size(),
                    paused: b.is_paused(),
                }
            })
            .collect();
        baskets.sort_by(|a, b| a.name.cmp(&b.name));
        let queries = self
            .scheduler
            .factories()
            .into_iter()
            .map(|f| QueryStats {
                id: f.id,
                sql: f.query.sql.clone(),
                mode: match f.mode {
                    ExecutionMode::Reevaluate => "reevaluate".into(),
                    ExecutionMode::Incremental => "incremental".into(),
                },
                firings: f.stats.firings,
                tuples_in: f.stats.tuples_in,
                tuples_out: f.stats.tuples_out,
                busy: f.stats.busy,
                last_tuples_touched: f.stats.last_tuples_touched,
                pending_results: self.results.get(&f.id).map_or(0, VecDeque::len),
                paused: f.paused,
            })
            .collect();
        EngineStats {
            baskets,
            queries,
            total_firings: self.scheduler.total_firings,
            scheduler_rounds: self.scheduler.rounds,
            partitions: self.scheduler.partition_count(),
            workers: self.config.workers,
            dropped_chunks: self.dropped_chunks,
        }
    }

    /// Ids of all registered queries.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.scheduler.factories().iter().map(|f| f.id).collect()
    }
}

fn spec_schema(columns: &[datacell_sql::ColumnSpec]) -> Schema {
    Schema::new(
        columns
            .iter()
            .map(|c| datacell_storage::ColumnDef {
                name: c.name.clone(),
                ty: datacell_plan::type_of(c.ty),
                not_null: c.not_null,
            })
            .collect(),
    )
}
