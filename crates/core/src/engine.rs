//! The DataCell engine facade: catalog + baskets + factories + scheduler.
//!
//! This is the programmatic surface of the whole system (paper Figure 1):
//! DDL and one-time queries via [`DataCell::execute`], continuous queries
//! via [`DataCell::register_query`], stream ingestion via
//! [`DataCell::push_rows`] (or threaded [`crate::receptor::Receptor`]s),
//! and event-driven evaluation via [`DataCell::step`] /
//! [`DataCell::run_until_idle`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell_faults::FaultPoint;
use datacell_obs::{MetricValue, MetricsSnapshot, TraceEvent};
use datacell_plan::{compile, execute, AnalyzeRow, Binder, ExecSources, ExecutionMode};
use datacell_sql::{parse_statement, Statement};
use datacell_storage::{Catalog, Chunk, Row, Schema};
use parking_lot::RwLock;

use crate::admission::{MemoryBudget, ShedPolicy};
use crate::basket::Basket;
use crate::config::DataCellConfig;
use crate::durability::{EngineWal, MetaRecord, QuerySnapshot, SnapshotData};
use crate::emitter::{channel_obs, Emitter, EmitterSender};
use crate::error::{EngineError, Result};
use crate::factory::{BasketHandle, Factory, FireContext};
use crate::network::QueryNetwork;
use crate::obs::EngineObs;
use crate::scheduler::{NetState, Scheduler};
use crate::stats::{BasketStats, EngineStats, QueryStats};

/// Outcome of [`DataCell::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Object created.
    Created(String),
    /// Object dropped.
    Dropped(String),
    /// Rows inserted.
    Inserted(usize),
    /// One-time query result: column names plus rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Result data.
        chunk: Chunk,
    },
}

/// Identifier of a registered continuous query.
pub type QueryId = u64;

/// The DataCell instance.
pub struct DataCell {
    catalog: Catalog,
    baskets: HashMap<String, BasketHandle>,
    results: HashMap<QueryId, VecDeque<Chunk>>,
    subscribers: HashMap<QueryId, Vec<EmitterSender>>,
    /// Chunks dropped by bounded subscriber queues (drop-oldest overflow).
    dropped_chunks: u64,
    /// Per-query attribution of those drops (`STATS DETAIL` table).
    dropped_by_query: HashMap<QueryId, u64>,
    /// Observability hub: metrics registry + flight recorder. Always
    /// present; recording is a no-op when `config.observability` is off.
    obs: Arc<EngineObs>,
    /// Engine start tick (uptime reporting).
    started: Instant,
    /// Owns every factory, grouped into basket-partitions.
    scheduler: Scheduler,
    /// The write-ahead log, when `config.wal` is set.
    wal: Option<EngineWal>,
    /// Checkpoint epoch counter (pairs snapshots with their meta-log
    /// markers; see `MetaRecord::Checkpoint`).
    wal_epoch: u64,
    /// Whether [`DataCell::open`] found (and recovered) prior state.
    recovered: bool,
    /// Admission control: pushes rejected over budget (reject /
    /// pause-receptors policies).
    admission_rejected: u64,
    /// Admission control: queued result chunks shed (drop-oldest policy).
    admission_dropped: u64,
    /// Pause-receptors hysteresis state: `true` while ingest is paused by
    /// the memory budget (resumes below the low watermark).
    ingest_paused: bool,
    config: DataCellConfig,
    next_qid: QueryId,
}

impl Default for DataCell {
    fn default() -> Self {
        DataCell::new(DataCellConfig::default())
    }
}

impl DataCell {
    /// Create an engine with the given configuration. With durability
    /// configured this delegates to [`DataCell::open`] and panics on an
    /// I/O failure; fallible embedders should call `open` directly.
    pub fn new(config: DataCellConfig) -> Self {
        // lint:allow(panic-freedom): new() is the documented panicking convenience; open() is the fallible API
        DataCell::open(config).expect("failed to open durable DataCell")
    }

    fn fresh(config: DataCellConfig) -> Self {
        DataCell {
            catalog: Catalog::new(),
            baskets: HashMap::new(),
            results: HashMap::new(),
            subscribers: HashMap::new(),
            dropped_chunks: 0,
            dropped_by_query: HashMap::new(),
            obs: Arc::new(EngineObs::new(config.observability)),
            started: Instant::now(),
            scheduler: Scheduler::new(),
            wal: None,
            wal_epoch: 0,
            recovered: false,
            admission_rejected: 0,
            admission_dropped: 0,
            ingest_paused: false,
            config,
            next_qid: 1,
        }
    }

    /// Open an engine. Without `config.wal` this is a fresh in-memory
    /// engine; with it, the WAL directory is created or — if it already
    /// holds state — fully recovered: catalog, tables (with contents),
    /// baskets (replayed from the stream logs through the bulk
    /// `Bat::extend_from_rows` path), registered queries and their
    /// factories at their exact pre-crash positions, so emission resumes
    /// without duplicating or skipping a window fire.
    pub fn open(config: DataCellConfig) -> Result<DataCell> {
        let mut cell = DataCell::fresh(config);
        let Some(wal_config) = cell.config.wal.clone() else {
            return Ok(cell);
        };
        let (wal, snapshot, records) = EngineWal::open(wal_config, &cell.config.faults)?;
        cell.recovered = snapshot.is_some() || !records.is_empty();
        cell.recover(&wal, snapshot, records)?;
        cell.wal = Some(wal);
        if cell.recovered {
            let stats = cell.wal.as_ref().map(EngineWal::stats).unwrap_or_default();
            cell.obs.event(
                "recovery",
                format!(
                    "replayed {} batches / {} rows, dropped {} damaged bytes",
                    stats.recovered_batches, stats.recovered_rows, stats.dropped_bytes
                ),
            );
        }
        Ok(cell)
    }

    /// Whether [`DataCell::open`] recovered prior on-disk state (as
    /// opposed to initializing an empty WAL directory).
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Rebuild the whole engine from a snapshot plus the meta records
    /// appended after it.
    fn recover(
        &mut self,
        wal: &EngineWal,
        snapshot: Option<SnapshotData>,
        mut records: Vec<MetaRecord>,
    ) -> Result<()> {
        // Skip the stale meta prefix, if any: a crash between the
        // snapshot rename and the meta-log reset leaves pre-snapshot
        // records behind, terminated by the checkpoint marker of the
        // snapshot's epoch. Everything through that marker is already
        // inside the snapshot; re-applying it would collide (duplicate
        // DDL, double table inserts).
        let snapshot = match snapshot {
            Some(snap) => {
                self.wal_epoch = snap.epoch;
                if let Some(i) = records.iter().rposition(
                    |r| matches!(r, MetaRecord::Checkpoint { epoch } if *epoch == snap.epoch),
                ) {
                    records.drain(..=i);
                }
                snap
            }
            None => SnapshotData::default(),
        };

        // 1. Catalog + query list: snapshot first, then the meta log.
        let mut queries: std::collections::BTreeMap<QueryId, QuerySnapshot> =
            std::collections::BTreeMap::new();
        let mut stream_paused: HashMap<String, bool> = HashMap::new();
        self.next_qid = snapshot.next_qid.max(1);
        for (name, schema, paused) in snapshot.streams {
            self.catalog.create_stream(&name, schema)?;
            stream_paused.insert(name.to_ascii_lowercase(), paused);
        }
        for (name, schema, contents) in snapshot.tables {
            let handle = self.catalog.create_table(&name, schema)?;
            handle.write().insert_chunk(&contents)?;
        }
        for q in snapshot.queries {
            queries.insert(q.qid, q);
        }
        for record in records {
            match record {
                MetaRecord::CreateStream { name, schema } => {
                    self.catalog.create_stream(&name, schema)?;
                    stream_paused.insert(name.to_ascii_lowercase(), false);
                }
                MetaRecord::CreateTable { name, schema } => {
                    self.catalog.create_table(&name, schema)?;
                }
                MetaRecord::Drop { name } => {
                    self.catalog.drop_entry(&name)?;
                    stream_paused.remove(&name.to_ascii_lowercase());
                }
                MetaRecord::TableInsert { name, rows } => {
                    self.catalog.table(&name)?.write().insert_rows(&rows)?;
                }
                MetaRecord::Register { qid, sql, mode, state } => {
                    self.next_qid = self.next_qid.max(qid + 1);
                    queries.insert(
                        qid,
                        QuerySnapshot { qid, sql, mode, paused: false, state },
                    );
                }
                MetaRecord::Deregister { qid } => {
                    queries.remove(&qid);
                }
                MetaRecord::QueryPaused { qid, paused } => {
                    if let Some(q) = queries.get_mut(&qid) {
                        q.paused = paused;
                    }
                }
                MetaRecord::StreamPaused { name, paused } => {
                    stream_paused.insert(name.to_ascii_lowercase(), paused);
                }
                MetaRecord::FireState { qid, state } => {
                    if let Some(q) = queries.get_mut(&qid) {
                        q.state = state;
                    }
                }
                MetaRecord::Checkpoint { epoch } => {
                    // A marker whose snapshot never landed (crash before
                    // the rename). Remember the epoch so it is never
                    // reused — the skip rule above keys on it.
                    self.wal_epoch = self.wal_epoch.max(epoch);
                }
            }
        }

        // 2. Baskets: replay each stream's log tail through the bulk
        // row-append path, then attach the log for future appends.
        for name in self.catalog.stream_names() {
            let schema = self.catalog.schema_of(&name)?;
            let (log, batches) = wal.stream_log(&name)?;
            let base = batches.first().map_or(log.end_oid(), |b| b.first_oid);
            let mut basket = Basket::restore(&name, schema, base);
            for batch in &batches {
                let mut r = datacell_storage::binio::ByteReader::new(&batch.payload);
                let rows = datacell_storage::binio::decode_batch(&mut r)
                    .map_err(|e| EngineError::Wal(format!("stream {name}: {e}")))?;
                basket.push_rows(&rows)?;
            }
            basket.attach_wal(log);
            basket.set_trace(self.config.observability);
            if stream_paused.get(&name.to_ascii_lowercase()).copied().unwrap_or(false) {
                basket.set_paused(true);
            }
            self.baskets.insert(name.to_ascii_lowercase(), Arc::new(RwLock::new(basket)));
        }

        // 3. Factories: recompile each query and restore its saved
        // position (cursors + incremental ring rebuild from the retained
        // basket tail).
        for (qid, q) in queries {
            self.next_qid = self.next_qid.max(qid + 1);
            let compiled = self.compile_continuous(&q.sql)?;
            let mut factory =
                Factory::new(qid, compiled, q.mode, &self.baskets, &self.catalog)?;
            let ctx = FireContext {
                baskets: &self.baskets,
                catalog: &self.catalog,
                config: &self.config,
                wal: None,  // recovery itself is never re-logged
                obs: None, // replayed firings must not pollute live latency series
            };
            factory.restore(&q.state, &ctx)?;
            factory.paused = q.paused;
            self.scheduler.insert(factory);
            self.results.insert(qid, VecDeque::new());
        }

        // 4. Re-trim: replayed segments may hold a prefix that was already
        // retired before the crash; one watermark pass drops it again.
        let ctx = FireContext {
            baskets: &self.baskets,
            catalog: &self.catalog,
            config: &self.config,
            wal: Some(wal),
            obs: None,
        };
        self.scheduler.retire_all(&ctx);
        Ok(())
    }

    /// Parse, bind and compile a continuous SELECT (shared by
    /// registration and recovery).
    fn compile_continuous(&self, sql: &str) -> Result<datacell_plan::CompiledQuery> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(EngineError::InvalidStatement(format!(
                    "only SELECT can be registered as a continuous query, got {other}"
                )))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        if !compiled.is_continuous() {
            return Err(EngineError::InvalidStatement(
                "query reads no stream; run it with execute() instead".into(),
            ));
        }
        Ok(compiled)
    }

    /// Append one meta record to the WAL, if durability is on.
    fn log_meta(&self, record: MetaRecord) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.append(&record),
            None => Ok(()),
        }
    }

    /// Write a catalog snapshot (streams, tables with contents, queries
    /// with their exact factory states) and compact the meta log — the
    /// graceful-shutdown checkpoint; also triggered automatically when
    /// the meta log outgrows `WalConfig::checkpoint_meta_bytes`. Also
    /// fsyncs every log, whatever the configured policy. Crash-atomic: a
    /// checkpoint marker is made durable in the meta log *before* the
    /// snapshot rename, so recovery can tell pre-snapshot records from
    /// post-snapshot ones whatever instant the process dies. No-op
    /// without durability.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let epoch = self.wal_epoch + 1;
        let mut streams = Vec::new();
        for name in self.catalog.stream_names() {
            let schema = self.catalog.schema_of(&name)?;
            let paused = self
                .baskets
                .get(&name)
                .map(|b| b.read().is_paused())
                .unwrap_or(false);
            // Preserve the original (case-preserved) stream name.
            let name = self.catalog.stream(&name)?.name;
            streams.push((name, schema, paused));
        }
        let mut tables = Vec::new();
        for name in self.catalog.names() {
            if let Ok(handle) = self.catalog.table(&name) {
                let table = handle.read();
                tables.push((table.name().to_owned(), table.schema().clone(), table.scan()));
            }
        }
        let queries = self
            .scheduler
            .factories()
            .into_iter()
            .map(|f| QuerySnapshot {
                qid: f.id,
                sql: f.query.sql.clone(),
                mode: f.mode,
                paused: f.paused,
                state: f.state(),
            })
            .collect();
        let snap = SnapshotData { epoch, next_qid: self.next_qid, streams, tables, queries };
        // Marker first (durable), then the atomic snapshot rename + meta
        // reset — see the method docs.
        wal.append(&MetaRecord::Checkpoint { epoch })?;
        wal.sync_meta()?;
        wal.write_snapshot(&snap)?;
        self.wal_epoch = epoch;
        self.obs.event("checkpoint", format!("epoch {epoch}"));
        let mut degraded = Vec::new();
        for basket in self.baskets.values() {
            let mut b = basket.write();
            b.sync_wal()?;
            if let Some(reason) = b.take_degraded_event() {
                degraded.push((b.name().to_owned(), reason));
            }
        }
        for (name, reason) in degraded {
            self.obs.record_degraded(&name, &reason);
        }
        wal.sync_meta()
    }

    /// Checkpoint automatically once the meta log (fire records, mostly)
    /// outgrows the configured bound — keeps recovery replay bounded on
    /// long-running durable engines.
    fn maybe_auto_checkpoint(&mut self) -> Result<()> {
        let due = self.wal.as_ref().is_some_and(|w| {
            w.config()
                .checkpoint_meta_bytes
                .is_some_and(|limit| w.meta_bytes() >= limit)
        });
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// WAL counters, when durability is on.
    pub fn wal_stats(&self) -> Option<datacell_wal::WalStats> {
        self.wal.as_ref().map(EngineWal::stats)
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current configuration.
    pub fn config(&self) -> &DataCellConfig {
        &self.config
    }

    /// Mutate configuration knobs (affects subsequent firings).
    pub fn config_mut(&mut self) -> &mut DataCellConfig {
        &mut self.config
    }

    // ---- DDL / DML / one-time queries ---------------------------------

    /// Execute a single SQL statement: `CREATE TABLE`, `CREATE STREAM`,
    /// `DROP`, `INSERT`, or a one-time `SELECT`.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let outcome = self.execute_inner(sql)?;
        // DDL / table inserts append meta records too; keep the log
        // bounded even for workloads that never run the scheduler.
        self.maybe_auto_checkpoint()?;
        Ok(outcome)
    }

    fn execute_inner(&mut self, sql: &str) -> Result<ExecOutcome> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                let schema = spec_schema(&columns);
                self.catalog.create_table(&name, schema.clone())?;
                self.log_meta(MetaRecord::CreateTable { name: name.clone(), schema })?;
                self.obs.event("create_table", name.clone());
                Ok(ExecOutcome::Created(name))
            }
            Statement::CreateStream { name, columns } => {
                let schema = spec_schema(&columns);
                self.catalog.create_stream(&name, schema.clone())?;
                let mut basket = Basket::new(&name, schema.clone());
                basket.set_trace(self.config.observability);
                if let Some(wal) = &self.wal {
                    // A genuinely new stream: clear any stale log files a
                    // crashed earlier incarnation of the name left behind,
                    // then open its (empty) log.
                    let key = name.to_ascii_lowercase();
                    wal.drop_stream_log(&key);
                    let (log, _) = wal.stream_log(&key)?;
                    basket.attach_wal(log);
                }
                self.baskets
                    .insert(name.to_ascii_lowercase(), Arc::new(RwLock::new(basket)));
                self.log_meta(MetaRecord::CreateStream { name: name.clone(), schema })?;
                self.obs.event("create_stream", name.clone());
                Ok(ExecOutcome::Created(name))
            }
            Statement::Drop { name } => {
                let was_stream = self.catalog.is_stream(&name);
                self.catalog.drop_entry(&name)?;
                self.baskets.remove(&name.to_ascii_lowercase());
                // Write-ahead: the Drop record must be durable before the
                // stream's log files vanish, or a crash in between would
                // resurrect the stream empty, with its OID space reset.
                self.log_meta(MetaRecord::Drop { name: name.clone() })?;
                if was_stream {
                    if let Some(wal) = &self.wal {
                        wal.drop_stream_log(&name.to_ascii_lowercase());
                    }
                }
                self.obs.event("drop", name.clone());
                Ok(ExecOutcome::Dropped(name))
            }
            Statement::Insert { table, rows } => {
                let mut converted: Vec<Row> = Vec::with_capacity(rows.len());
                for row in &rows {
                    converted.push(
                        row.iter()
                            .map(datacell_plan::literal_to_value)
                            .collect::<datacell_plan::Result<Row>>()?,
                    );
                }
                if self.catalog.is_stream(&table) {
                    // Stream inserts are logged by the basket itself.
                    Ok(ExecOutcome::Inserted(self.push_rows(&table, &converted)?))
                } else {
                    let handle = self.catalog.table(&table)?;
                    let n = handle.write().insert_rows(&converted)?;
                    self.log_meta(MetaRecord::TableInsert { name: table, rows: converted })?;
                    Ok(ExecOutcome::Inserted(n))
                }
            }
            Statement::Select(stmt) => {
                let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
                let compiled = compile(sql, bound)?;
                // One-time evaluation: tables snapshot; streams read their
                // current basket contents without consuming. Windows only
                // make sense continuously.
                for s in &compiled.streams {
                    if s.window.is_some() {
                        return Err(EngineError::InvalidStatement(
                            "windowed queries must be registered as continuous queries"
                                .into(),
                        ));
                    }
                }
                let mut sources = ExecSources::new();
                for s in &compiled.streams {
                    let basket = self
                        .baskets
                        .get(&s.object.to_ascii_lowercase())
                        .ok_or_else(|| EngineError::UnknownStream(s.object.clone()))?;
                    sources.bind(&s.binding, basket.read().contents());
                }
                for (binding, object) in &compiled.tables {
                    let handle = self.catalog.table(object)?;
                    let snap = handle.read().scan();
                    sources.bind(binding, snap);
                }
                let chunk = execute(&compiled.plan, &sources).map_err(EngineError::Plan)?;
                Ok(ExecOutcome::Rows { names: compiled.output_names, chunk })
            }
        }
    }

    /// Run a `;`-separated script of statements.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = datacell_sql::parse_script(script)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute(&stmt.to_string())?);
        }
        Ok(out)
    }

    // ---- continuous queries --------------------------------------------

    /// Register a continuous query in the engine's default mode.
    pub fn register_query(&mut self, sql: &str) -> Result<QueryId> {
        self.register_query_with_mode(sql, self.config.default_mode)
    }

    /// Register a continuous query with an explicit execution mode.
    pub fn register_query_with_mode(
        &mut self,
        sql: &str,
        mode: ExecutionMode,
    ) -> Result<QueryId> {
        let compiled = self.compile_continuous(sql)?;
        let id = self.next_qid;
        self.next_qid += 1;
        let factory = Factory::new(id, compiled, mode, &self.baskets, &self.catalog)?;
        self.log_meta(MetaRecord::Register {
            qid: id,
            sql: sql.to_owned(),
            mode,
            state: factory.state(),
        })?;
        self.scheduler.insert(factory);
        self.results.insert(id, VecDeque::new());
        self.obs.event("register", format!("q{id}: {sql}"));
        Ok(id)
    }

    /// Remove a continuous query from the network.
    pub fn deregister_query(&mut self, id: QueryId) -> Result<()> {
        self.scheduler
            .remove(id)
            .map(|_| {
                self.results.remove(&id);
                self.subscribers.remove(&id);
            })
            .ok_or(EngineError::UnknownQuery(id))?;
        self.obs.event("deregister", format!("q{id}"));
        self.log_meta(MetaRecord::Deregister { qid: id })
    }

    /// Pause / resume one query (paper §4, "Pause and Resume").
    pub fn set_query_paused(&mut self, id: QueryId, paused: bool) -> Result<()> {
        self.scheduler
            .factory_mut(id)
            .map(|f| f.paused = paused)
            .ok_or(EngineError::UnknownQuery(id))?;
        self.obs.event("pause", format!("q{id} paused={paused}"));
        self.log_meta(MetaRecord::QueryPaused { qid: id, paused })
    }

    /// Pause / resume one stream's ingestion.
    pub fn set_stream_paused(&mut self, stream: &str, paused: bool) -> Result<()> {
        self.baskets
            .get(&stream.to_ascii_lowercase())
            .map(|b| b.write().set_paused(paused))
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))?;
        self.obs.event("pause", format!("stream {stream} paused={paused}"));
        self.log_meta(MetaRecord::StreamPaused { name: stream.to_owned(), paused })
    }

    /// The effective execution mode of a query.
    pub fn query_mode(&self, id: QueryId) -> Result<ExecutionMode> {
        self.scheduler
            .factory(id)
            .map(|f| f.mode)
            .ok_or(EngineError::UnknownQuery(id))
    }

    // ---- ingestion -----------------------------------------------------

    /// Append rows to a stream's basket. Returns how many were accepted
    /// (0 when the stream is paused). Over the configured
    /// [`MemoryBudget`] the push is shed by policy — see
    /// [`crate::admission`] and [`EngineError::Overloaded`].
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize> {
        let basket = self
            .baskets
            .get(&stream.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))?
            .clone();
        self.admit()?;
        let (n, degraded) = {
            let mut b = basket.write();
            let n = b.push_rows(rows)?;
            (n, b.take_degraded_event())
        };
        if let Some(reason) = degraded {
            self.obs.record_degraded(stream, &reason);
        }
        self.obs.record_ingest(n);
        Ok(n)
    }

    /// Append a columnar chunk to a stream's basket (bulk receptor path).
    /// Subject to the same admission control as [`DataCell::push_rows`].
    pub fn push_chunk(&mut self, stream: &str, chunk: &Chunk) -> Result<usize> {
        let basket = self
            .baskets
            .get(&stream.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))?
            .clone();
        self.admit()?;
        let (n, degraded) = {
            let mut b = basket.write();
            let n = b.push_chunk(chunk)?;
            (n, b.take_degraded_event())
        };
        if let Some(reason) = degraded {
            self.obs.record_degraded(stream, &reason);
        }
        self.obs.record_ingest(n);
        Ok(n)
    }

    /// Bytes physically pinned across every basket buffer (the quantity
    /// the [`MemoryBudget`] bounds).
    pub fn pinned_bytes(&self) -> usize {
        self.baskets.values().map(|b| b.read().buffer_byte_size()).sum()
    }

    /// Whether ingestion is currently paused by the memory budget
    /// (pause-receptors policy; resumes automatically below the low
    /// watermark).
    pub fn ingest_paused(&self) -> bool {
        self.ingest_paused
    }

    /// True once the engine crossed either budget ceiling.
    fn over_budget(&self, budget: &MemoryBudget) -> bool {
        if self.pinned_bytes() > budget.max_pinned_bytes {
            return true;
        }
        let queued: usize =
            self.subscribers.values().flatten().map(EmitterSender::queued).sum();
        queued > budget.max_emitter_chunks
    }

    /// Shed the oldest half of every queued-result backlog (subscriber
    /// queues and the engine-internal pending buffers); returns how many
    /// chunks were dropped. The drop-oldest admission policy.
    fn shed_result_backlog(&mut self) -> usize {
        let mut shed = 0usize;
        for subs in self.subscribers.values() {
            for tx in subs {
                shed += tx.shed_to(tx.queued() / 2);
            }
        }
        for pending in self.results.values_mut() {
            let keep = pending.len() / 2;
            while pending.len() > keep {
                pending.pop_front();
                shed += 1;
            }
        }
        shed
    }

    /// Admission control for one push (see [`crate::admission`]): consult
    /// the memory budget — or the `AllocBudget` fault point, which forces
    /// the over-budget path deterministically — and shed by policy.
    fn admit(&mut self) -> Result<()> {
        let forced = self.config.faults.check(FaultPoint::AllocBudget).is_some();
        let Some(budget) = self.config.memory_budget else {
            if forced {
                // A fault plan can exercise overload without a budget
                // configured; shed like the default reject policy.
                self.admission_rejected += 1;
                self.obs.record_admission_rejected();
                return Err(EngineError::Overloaded {
                    retry_after_ms: MemoryBudget::DEFAULT_RETRY_AFTER_MS,
                });
            }
            return Ok(());
        };
        if self.ingest_paused {
            // Hysteresis: stay paused until usage falls below the low
            // watermark, then resume silently admitting.
            if !forced && self.pinned_bytes() <= budget.low_watermark() {
                self.ingest_paused = false;
                self.obs.event("admission", "ingest resumed: usage below low watermark");
            } else {
                self.admission_rejected += 1;
                self.obs.record_admission_rejected();
                return Err(EngineError::Overloaded { retry_after_ms: budget.retry_after_ms });
            }
        }
        if !forced && !self.over_budget(&budget) {
            return Ok(());
        }
        match budget.policy {
            ShedPolicy::Reject => {
                self.admission_rejected += 1;
                self.obs.record_admission_rejected();
                Err(EngineError::Overloaded { retry_after_ms: budget.retry_after_ms })
            }
            ShedPolicy::DropOldest => {
                let shed = self.shed_result_backlog();
                self.admission_dropped += shed as u64;
                self.obs.record_admission_dropped(shed as u64);
                self.obs
                    .event("admission", format!("drop-oldest shed {shed} queued chunk(s)"));
                Ok(())
            }
            ShedPolicy::PauseReceptors => {
                self.ingest_paused = true;
                self.admission_rejected += 1;
                self.obs.record_admission_rejected();
                self.obs.record_admission_pause();
                self.obs.event("admission", "ingest paused: memory budget exceeded");
                Err(EngineError::Overloaded { retry_after_ms: budget.retry_after_ms })
            }
        }
    }

    /// Shared handle to a stream's basket (for receptor threads).
    pub fn basket(&self, stream: &str) -> Result<BasketHandle> {
        self.baskets
            .get(&stream.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::UnknownStream(stream.to_owned()))
    }

    // ---- scheduling ------------------------------------------------------

    /// Split the engine into the three pieces every scheduling entry point
    /// needs: the scheduler, a fire context over the shared state, and the
    /// result-delivery sink (subscriber fan-out + pending-results queue).
    fn with_executor<R>(
        &mut self,
        run: impl FnOnce(
            &mut Scheduler,
            &FireContext<'_>,
            &mut dyn FnMut(QueryId, Chunk),
        ) -> R,
    ) -> R {
        let obs = &self.obs;
        let ctx = FireContext {
            baskets: &self.baskets,
            catalog: &self.catalog,
            config: &self.config,
            wal: self.wal.as_ref(),
            obs: Some(obs),
        };
        let results = &mut self.results;
        let results_cap = self.config.results_capacity;
        let subscribers = &mut self.subscribers;
        let dropped_chunks = &mut self.dropped_chunks;
        let dropped_by_query = &mut self.dropped_by_query;
        let mut sink = |qid: QueryId, mut chunk: Chunk| {
            // Result chunks sit in subscriber queues / the pending buffer
            // indefinitely; detach pass-through views from the basket
            // buffers once (no-op for the usual fresh aggregation output)
            // so a slow consumer pins one window, not whole buffer
            // generations, and ingestion keeps its in-place append path.
            // The per-subscriber clones below stay O(1) buffer shares.
            chunk.compact();
            // End-to-end latency: newest contributing arrival → result
            // handed to subscribers (the paper's response-time notion).
            if let Some(arrived) = chunk.stamp().instant() {
                obs.record_e2e(arrived.elapsed());
            }
            if let Some(subs) = subscribers.get_mut(&qid) {
                subs.retain(|tx| match tx.send(chunk.clone()) {
                    Ok(dropped) => {
                        *dropped_chunks += dropped as u64;
                        if dropped > 0 {
                            *dropped_by_query.entry(qid).or_default() += dropped as u64;
                            obs.record_emitter_drops(dropped as u64);
                        }
                        true
                    }
                    Err(_) => false,
                });
            }
            let pending = results.entry(qid).or_default();
            pending.push_back(chunk);
            if let Some(cap) = results_cap {
                while pending.len() > cap.max(1) {
                    pending.pop_front();
                }
            }
        };
        run(&mut self.scheduler, &ctx, &mut sink)
    }

    /// Fire every enabled factory once; returns how many fired. Runs on the
    /// scheduler's worker pool when `config.workers > 1` and the query
    /// network has more than one partition. Consumed basket prefixes are
    /// retired by the scheduler's per-partition watermark protocol.
    pub fn step(&mut self) -> Result<usize> {
        self.maybe_stall();
        let start = Instant::now();
        let fired = self.with_executor(|scheduler, ctx, sink| scheduler.step(ctx, sink))?;
        if fired > 0 {
            // Idle polls are excluded: a tight caller loop would otherwise
            // bury real pass durations under nanosecond no-op samples.
            self.obs.record_pass(start.elapsed());
        }
        self.maybe_auto_checkpoint()?;
        Ok(fired)
    }

    /// Run the scheduler until quiescent; returns total firings. In
    /// parallel mode each worker drives its basket partitions to quiescence
    /// independently.
    pub fn run_until_idle(&mut self) -> Result<u64> {
        self.maybe_stall();
        let start = Instant::now();
        let fired =
            self.with_executor(|scheduler, ctx, sink| scheduler.run_until_idle(ctx, sink))?;
        if fired > 0 {
            self.obs.record_pass(start.elapsed());
        }
        self.maybe_auto_checkpoint()?;
        Ok(fired)
    }

    /// `SchedulerStall` fault point: chaos plans can delay a scheduler
    /// pass. The injected kind is irrelevant — every fault here is a
    /// short sleep modelling a preempted worker, never an error.
    fn maybe_stall(&self) {
        if self.config.faults.check(FaultPoint::SchedulerStall).is_some() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // ---- results ----------------------------------------------------------

    /// Take all pending result chunks of a query.
    pub fn take_results(&mut self, id: QueryId) -> Result<Vec<Chunk>> {
        if self.scheduler.factory(id).is_none() && !self.results.contains_key(&id) {
            return Err(EngineError::UnknownQuery(id));
        }
        Ok(self
            .results
            .get_mut(&id)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default())
    }

    /// The most recent result chunk, discarding older pending ones.
    pub fn latest_result(&mut self, id: QueryId) -> Result<Option<Chunk>> {
        Ok(self.take_results(id)?.pop())
    }

    /// Subscribe an emitter to a query's future results. The subscriber
    /// queue is bounded by [`DataCellConfig::emitter_capacity`]; overflow
    /// drops the oldest chunks (counted in
    /// [`EngineStats::dropped_chunks`]).
    pub fn subscribe(&mut self, id: QueryId) -> Result<Emitter> {
        if self.scheduler.factory(id).is_none() {
            return Err(EngineError::UnknownQuery(id));
        }
        let (tx, emitter) =
            channel_obs(id, self.config.emitter_capacity, self.obs.emitter_queue_handle());
        self.subscribers.entry(id).or_default().push(tx);
        self.obs.event("subscribe", format!("q{id}"));
        Ok(emitter)
    }

    /// Disconnect every subscriber: each live [`Emitter`] drains what it
    /// has buffered and then observes end-of-stream. The shutdown hook a
    /// server frontend calls before dropping the engine, so blocked
    /// clients wake up instead of hanging on a dead queue.
    pub fn shutdown(&mut self) {
        self.obs.event("shutdown", format!("{} subscriber(s) disconnected", {
            self.subscribers.values().map(Vec::len).sum::<usize>()
        }));
        self.subscribers.clear();
    }

    /// Output column names of a query.
    pub fn output_names(&self, id: QueryId) -> Result<Vec<String>> {
        self.scheduler
            .factory(id)
            .map(|f| f.output_names().to_vec())
            .ok_or(EngineError::UnknownQuery(id))
    }

    /// Output schema of a query.
    pub fn output_schema(&self, id: QueryId) -> Result<Schema> {
        self.scheduler
            .factory(id)
            .map(|f| f.output_schema())
            .ok_or(EngineError::UnknownQuery(id))
    }

    // ---- monitoring --------------------------------------------------------

    /// Plan inspection for a registered query (one-time vs continuous vs
    /// incremental shapes).
    pub fn explain(&self, id: QueryId) -> Result<String> {
        let f = self.scheduler.factory(id).ok_or(EngineError::UnknownQuery(id))?;
        let mut text = f.query.explain_modes();
        text.push_str(&format!(
            "effective mode: {}\n",
            match f.mode {
                ExecutionMode::Reevaluate => "full re-evaluation",
                ExecutionMode::Incremental => "incremental",
            }
        ));
        if let Some(note) = &f.mode_note {
            text.push_str(&format!("note: {note}\n"));
        }
        text.push_str(&datacell_plan::sharing_section(&self.scheduler.sharing_of(id)));
        Ok(text)
    }

    /// Plan inspection for an arbitrary SELECT without registering it.
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(EngineError::InvalidStatement(format!(
                    "EXPLAIN supports SELECT only, got {other}"
                )))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        Ok(compiled.explain_modes())
    }

    /// The query network (demo's network pane).
    pub fn network(&self) -> QueryNetwork {
        QueryNetwork::from_factories(self.scheduler.factories().into_iter())
    }

    /// Petri-net snapshot: enabled transitions, place markings, and the
    /// partition decomposition the parallel executor schedules over.
    pub fn net_state(&self) -> NetState {
        let ctx = FireContext {
            baskets: &self.baskets,
            catalog: &self.catalog,
            config: &self.config,
            wal: self.wal.as_ref(),
            obs: None,
        };
        self.scheduler.net_state(&ctx)
    }

    /// Whole-engine statistics snapshot (demo's analysis pane).
    pub fn stats(&self) -> EngineStats {
        let mut baskets: Vec<BasketStats> = self
            .baskets
            .values()
            .map(|b| {
                let b = b.read();
                BasketStats {
                    name: b.name().to_owned(),
                    arrived: b.arrived(),
                    retired: b.retired(),
                    buffered: b.len(),
                    bytes: b.byte_size(),
                    buffer_bytes: b.buffer_byte_size(),
                    paused: b.is_paused(),
                    degraded: b.degraded().is_some(),
                }
            })
            .collect();
        baskets.sort_by(|a, b| a.name.cmp(&b.name));
        let queries = self
            .scheduler
            .factories()
            .into_iter()
            .map(|f| QueryStats {
                id: f.id,
                sql: f.query.sql.clone(),
                mode: match f.mode {
                    ExecutionMode::Reevaluate => "reevaluate".into(),
                    ExecutionMode::Incremental => "incremental".into(),
                },
                firings: f.stats.firings,
                tuples_in: f.stats.tuples_in,
                tuples_out: f.stats.tuples_out,
                busy: f.stats.busy,
                last_tuples_touched: f.stats.last_tuples_touched,
                pending_results: self.results.get(&f.id).map_or(0, VecDeque::len),
                dropped: self.dropped_by_query.get(&f.id).copied().unwrap_or(0),
                paused: f.paused,
            })
            .collect();
        let (shared_nodes, shared_nodes_active, shared_hits, shared_misses) =
            self.scheduler.shared_stats();
        let degraded_streams = baskets.iter().filter(|b| b.degraded).count();
        EngineStats {
            baskets,
            queries,
            total_firings: self.scheduler.total_firings,
            scheduler_rounds: self.scheduler.rounds,
            partitions: self.scheduler.partition_count(),
            workers: self.config.workers,
            dropped_chunks: self.dropped_chunks,
            shared_nodes,
            shared_nodes_active,
            shared_hits,
            shared_misses,
            degraded_streams,
            admission_rejected: self.admission_rejected,
            admission_dropped_chunks: self.admission_dropped,
            ingest_paused: self.ingest_paused,
            wal: self.wal_stats(),
        }
    }

    /// Ids of all registered queries.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.scheduler.factories().iter().map(|f| f.id).collect()
    }

    // ---- observability -----------------------------------------------------

    /// The engine's observability hub (metrics registry + flight
    /// recorder). Share the `Arc` with frontends that record their own
    /// series (e.g. the server's wire-delivery latency).
    pub fn obs(&self) -> &Arc<EngineObs> {
        &self.obs
    }

    /// Time since this engine incarnation was opened.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Snapshot every metric series: the live registry (latency
    /// histograms, ingest/firing counters) refreshed with point-in-time
    /// gauges, plus derived series from the engine and WAL stats
    /// (scheduler totals, shared-subplan cache, WAL append/fsync latency).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if self.obs.enabled() {
            let (buffered, pinned) = self.baskets.values().fold((0i64, 0i64), |acc, b| {
                let b = b.read();
                (acc.0 + b.len() as i64, acc.1 + b.buffer_byte_size() as i64)
            });
            self.obs.basket_buffered.set(buffered);
            self.obs.basket_pinned_bytes.set(pinned);
            let queued: usize =
                self.subscribers.values().flatten().map(EmitterSender::queued).sum();
            self.obs.emitter_queued.set(queued as i64);
        }
        let mut snap = self.obs.snapshot();
        let mut put = |name: &str, help: &str, value: MetricValue| {
            snap.help.insert(name.to_string(), help.to_string());
            snap.values.insert(name.to_string(), value);
        };
        put(
            "datacell_uptime_seconds",
            "seconds since this engine incarnation opened",
            MetricValue::Gauge(self.started.elapsed().as_secs() as i64),
        );
        put(
            "datacell_queries",
            "registered continuous queries",
            MetricValue::Gauge(self.scheduler.factories().len() as i64),
        );
        put(
            "datacell_partitions",
            "basket partitions in the query network",
            MetricValue::Gauge(self.scheduler.partition_count() as i64),
        );
        put(
            "datacell_scheduler_rounds_total",
            "scheduler rounds executed",
            MetricValue::Counter(self.scheduler.rounds),
        );
        let degraded =
            self.baskets.values().filter(|b| b.read().degraded().is_some()).count();
        put(
            "datacell_degraded_streams",
            "streams running with dropped durability (WAL detached after retry exhaustion)",
            MetricValue::Gauge(degraded as i64),
        );
        put(
            "datacell_ingest_paused",
            "1 while the memory budget has ingestion paused (pause-receptors policy)",
            MetricValue::Gauge(self.ingest_paused as i64),
        );
        let (nodes, active, hits, misses) = self.scheduler.shared_stats();
        put(
            "datacell_shared_nodes",
            "nodes in the shared-subplan DAG",
            MetricValue::Gauge(nodes as i64),
        );
        put(
            "datacell_shared_nodes_active",
            "shared-subplan nodes referenced by 2+ queries",
            MetricValue::Gauge(active as i64),
        );
        put(
            "datacell_shared_cache_hits_total",
            "per-pass shared-subplan cache hits",
            MetricValue::Counter(hits),
        );
        put(
            "datacell_shared_cache_misses_total",
            "per-pass shared-subplan cache misses",
            MetricValue::Counter(misses),
        );
        if let Some(wal) = self.wal_stats() {
            put(
                "datacell_wal_bytes_total",
                "bytes appended to the write-ahead logs",
                MetricValue::Counter(wal.wal_bytes),
            );
            put(
                "datacell_wal_appended_batches_total",
                "ingest batches appended to stream logs",
                MetricValue::Counter(wal.appended_batches),
            );
            put(
                "datacell_wal_append_us",
                "stream-log batch append latency (us)",
                MetricValue::Histogram(Box::new(wal.append_us)),
            );
            put(
                "datacell_wal_fsync_us",
                "explicit fsync latency (us)",
                MetricValue::Histogram(Box::new(wal.fsync_us)),
            );
            put(
                "datacell_wal_io_retries_total",
                "transient WAL I/O failures absorbed by the retry policy",
                MetricValue::Counter(wal.io_retries),
            );
            put(
                "datacell_wal_io_gave_up_total",
                "WAL operations that exhausted their retries (degraded-durability trigger)",
                MetricValue::Counter(wal.io_gave_up),
            );
        }
        snap
    }

    /// The `METRICS` page: every series in Prometheus text exposition
    /// format (round-trips through [`datacell_obs::parse_prometheus`]).
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Drain up to `n` most-recent flight-recorder events (all when
    /// `None`), oldest first — the `TRACE DUMP [N]` surface.
    pub fn trace_events(&self, n: Option<usize>) -> Vec<TraceEvent> {
        self.obs.drain_events(n)
    }

    /// `EXPLAIN ANALYZE` for one registered query: the plan inspection of
    /// [`DataCell::explain`] plus the factory's observed runtime — firing
    /// counts, rows in/out, busy time, and fire-latency percentiles.
    pub fn explain_analyze(&self, id: QueryId) -> Result<String> {
        let mut text = self.explain(id)?;
        let f = self.scheduler.factory(id).ok_or(EngineError::UnknownQuery(id))?;
        text.push('\n');
        text.push_str(&datacell_plan::render_analyze(&[analyze_row(
            f,
            self.dropped_by_query.get(&id).copied().unwrap_or(0),
        )]));
        Ok(text)
    }

    /// `STATS DETAIL`: the [`EngineStats`] render plus the per-factory
    /// timing table and the chunk-lifecycle latency summary.
    pub fn stats_detail(&self) -> String {
        let mut text = self.stats().render();
        let factories = self.scheduler.factories();
        if !factories.is_empty() {
            let rows: Vec<AnalyzeRow> = factories
                .iter()
                .map(|f| {
                    analyze_row(f, self.dropped_by_query.get(&f.id).copied().unwrap_or(0))
                })
                .collect();
            text.push('\n');
            text.push_str(&datacell_plan::render_analyze(&rows));
        }
        let snap = self.metrics_snapshot();
        let mut latency = String::new();
        for (name, label) in [
            ("datacell_basket_wait_us", "basket wait"),
            ("datacell_factory_fire_us", "factory fire"),
            ("datacell_scheduler_pass_us", "scheduler pass"),
            ("datacell_e2e_latency_us", "end-to-end"),
            ("datacell_emitter_queue_us", "emitter queue"),
            ("datacell_wire_delivery_us", "wire delivery"),
            ("datacell_wal_append_us", "wal append"),
            ("datacell_wal_fsync_us", "wal fsync"),
        ] {
            let Some(h) = snap.histogram(name) else { continue };
            if h.is_empty() {
                continue;
            }
            let (p50, p95, p99) = h.p50_p95_p99();
            latency.push_str(&format!(
                "  {label:<14} n={:<9} p50={p50:.0}us p95={p95:.0}us p99={p99:.0}us\n",
                h.count
            ));
        }
        if !latency.is_empty() {
            text.push_str("\n== latency ==\n");
            text.push_str(&latency);
        }
        text
    }
}

/// One factory's `EXPLAIN ANALYZE` table row.
fn analyze_row(f: &Factory, dropped: u64) -> AnalyzeRow {
    let (p50, p95, p99) = f.stats.fire_us.p50_p95_p99();
    AnalyzeRow {
        qid: f.id,
        mode: match f.mode {
            ExecutionMode::Reevaluate => "reeval".into(),
            ExecutionMode::Incremental => "incr".into(),
        },
        firings: f.stats.firings,
        rows_in: f.stats.tuples_in,
        rows_out: f.stats.tuples_out,
        busy_us: f.stats.busy.as_micros().min(u64::MAX as u128) as u64,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        dropped,
    }
}

fn spec_schema(columns: &[datacell_sql::ColumnSpec]) -> Schema {
    Schema::new(
        columns
            .iter()
            .map(|c| datacell_storage::ColumnDef {
                name: c.name.clone(),
                ty: datacell_plan::type_of(c.ty),
                not_null: c.not_null,
            })
            .collect(),
    )
}
