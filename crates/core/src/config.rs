//! Engine configuration — the "DataCell knobs" the demo lets the audience
//! vary (paper §4).

use datacell_faults::Faults;
use datacell_plan::ExecutionMode;
use datacell_wal::WalConfig;

use crate::admission::MemoryBudget;

/// Tunable engine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCellConfig {
    /// Default execution mode for newly registered continuous queries.
    pub default_mode: ExecutionMode,
    /// Whether incremental factories cache per-basic-window partials.
    /// Disabling this (ablation) recomputes every basic window per slide,
    /// isolating the benefit of intermediate reuse.
    pub cache_partials: bool,
    /// Minimum number of pending tuples before an *unwindowed* continuous
    /// query fires. 1 = fire per tuple (lowest latency); larger values
    /// batch arrivals (higher throughput) — the scheduler's batching knob.
    pub firing_threshold: usize,
    /// Retire (drop) basket tuples once every consumer has passed them.
    pub retire_consumed: bool,
    /// Shared multi-query execution: queries whose leading operators
    /// (window → WHERE → GROUP/aggregates) have the same structural
    /// fingerprint evaluate them **once per scheduler pass**, fanning the
    /// result out to every dependent factory. Sharing never changes
    /// results — subscriber streams are byte-identical either way; this
    /// knob exists for ablation and debugging.
    pub shared_execution: bool,
    /// Scheduler worker threads. `1` (the default) is the classic serial
    /// round-robin executor; larger values fire independent basket
    /// partitions concurrently on a `std::thread` pool. Per-query output is
    /// identical for every value — parallelism never changes results, only
    /// throughput. Effective parallelism is capped by the number of
    /// partitions in the query network.
    pub workers: usize,
    /// Capacity (in chunks) of each subscriber queue created by
    /// [`DataCell::subscribe`](crate::DataCell). When a slow client falls
    /// more than this many chunks behind, the **oldest** buffered chunks
    /// are dropped to make room (drop-oldest overflow policy); every drop
    /// is counted in [`EngineStats::dropped_chunks`](crate::EngineStats).
    /// `None` = unbounded (OOM hazard with slow clients — opt-in only).
    pub emitter_capacity: Option<usize>,
    /// Capacity (in chunks) of each query's **engine-internal**
    /// pending-results queue (the one [`DataCell::take_results`]
    /// drains). Embedders that poll `take_results` want the default
    /// `None` (keep everything); a server frontend that delivers results
    /// only through subscriptions should bound it, since nothing ever
    /// drains the internal queue there. Overflow discards the oldest
    /// pending chunk.
    pub results_capacity: Option<usize>,
    /// Observability: when `true` (the default) the engine stamps each
    /// ingest batch with an arrival tick and records chunk-lifecycle
    /// latency histograms (basket-wait, factory-fire, end-to-end,
    /// emitter-queue), scheduler pass durations, and lifecycle events into
    /// the [`datacell_obs`] registry + flight recorder exposed by
    /// [`DataCell::obs`](crate::DataCell::obs) and the server's `METRICS`
    /// / `EXPLAIN ANALYZE` / `TRACE DUMP` commands. The instrumentation is
    /// relaxed-atomic and budgeted under 2% of e1 throughput; disabling it
    /// turns every record into a no-op for benchmarking the floor.
    /// Tracing never changes results — subscriber streams are
    /// byte-identical either way.
    pub observability: bool,
    /// Durability: `Some` attaches a write-ahead log under
    /// [`WalConfig::dir`] — ingest batches, DDL, query registration and
    /// per-fire factory state are logged, and
    /// [`DataCell::open`](crate::DataCell::open) recovers the whole engine
    /// from disk. The fsync policy ([`WalConfig::sync`]) trades ingest
    /// latency for the durability window; see the `datacell-wal` crate
    /// docs. `None` (the default) is the classic in-memory engine.
    pub wal: Option<WalConfig>,
    /// Admission control: `Some` puts a ceiling on pinned basket bytes
    /// and emitter occupancy, shedding over-budget pushes by the budget's
    /// [`ShedPolicy`](crate::ShedPolicy) (reject with a retryable
    /// overload error / drop oldest queued results / pause receptors
    /// with hysteresis). `None` (the default) admits everything — the
    /// historical behaviour.
    pub memory_budget: Option<MemoryBudget>,
    /// Fault injection: a [`Faults`] facade over an optional seeded
    /// [`FaultPlan`](datacell_faults::FaultPlan). Disabled (the default)
    /// costs one branch per checked site; enabled, the plan's schedule
    /// injects I/O errors into the WAL seam, forces the over-budget
    /// admission path, and stalls scheduler passes — deterministically,
    /// for chaos tests. Never enable in production.
    pub faults: Faults,
}

impl Default for DataCellConfig {
    fn default() -> Self {
        DataCellConfig {
            default_mode: ExecutionMode::Reevaluate,
            cache_partials: true,
            firing_threshold: 1,
            retire_consumed: true,
            shared_execution: true,
            workers: 1,
            emitter_capacity: Some(1024),
            results_capacity: None,
            observability: true,
            wal: None,
            memory_budget: None,
            faults: Faults::disabled(),
        }
    }
}

impl DataCellConfig {
    /// Config with incremental mode as the default.
    pub fn incremental() -> Self {
        DataCellConfig { default_mode: ExecutionMode::Incremental, ..Default::default() }
    }

    /// Config with a parallel executor of `workers` threads.
    pub fn parallel(workers: usize) -> Self {
        DataCellConfig { workers: workers.max(1), ..Default::default() }
    }

    /// Config with durability under `dir` (default fsync policy; see
    /// [`WalConfig::at`]).
    pub fn durable(dir: impl Into<std::path::PathBuf>) -> Self {
        DataCellConfig { wal: Some(WalConfig::at(dir)), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = DataCellConfig::default();
        assert_eq!(c.default_mode, ExecutionMode::Reevaluate);
        assert!(c.cache_partials);
        assert_eq!(c.firing_threshold, 1);
        assert!(c.retire_consumed);
        assert!(c.shared_execution);
        assert_eq!(c.workers, 1);
        assert_eq!(c.emitter_capacity, Some(1024));
        assert_eq!(c.results_capacity, None);
        assert!(c.observability);
        assert_eq!(c.wal, None);
        assert_eq!(c.memory_budget, None);
        assert!(!c.faults.is_enabled());
        assert!(DataCellConfig::durable("/tmp/x").wal.is_some());
        assert_eq!(DataCellConfig::incremental().default_mode, ExecutionMode::Incremental);
    }

    #[test]
    fn parallel_clamps_zero_workers() {
        assert_eq!(DataCellConfig::parallel(0).workers, 1);
        assert_eq!(DataCellConfig::parallel(4).workers, 4);
    }
}
