//! Engine-level monitoring: the textual counterpart of the demo's
//! "Analysis" pane (paper §4, Figure 4): elapsed time, incoming data rate
//! per basket, intermediate sizes — per query and for the whole network.

use std::time::Duration;

use datacell_wal::WalStats;

/// Statistics for one basket.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BasketStats {
    /// Stream/basket name.
    pub name: String,
    /// Total tuples ever appended.
    pub arrived: u64,
    /// Total tuples retired.
    pub retired: u64,
    /// Tuples currently buffered.
    pub buffered: usize,
    /// Approximate buffered bytes (column windows; shared segments are
    /// counted once — views report their window, owners the buffer).
    pub bytes: usize,
    /// Bytes physically pinned by the backing buffers, including the
    /// retired-but-uncompacted prefix kept alive by live views.
    pub buffer_bytes: usize,
    /// Whether ingestion is paused.
    pub paused: bool,
    /// Whether the basket dropped durability (its WAL write exhausted
    /// the retry policy; ingest continues un-durably).
    pub degraded: bool,
}

/// Statistics for one continuous query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryStats {
    /// Query id.
    pub id: u64,
    /// SQL text.
    pub sql: String,
    /// Execution mode (rendered).
    pub mode: String,
    /// Firings so far.
    pub firings: u64,
    /// Stream tuples consumed.
    pub tuples_in: u64,
    /// Result tuples produced.
    pub tuples_out: u64,
    /// Total evaluation time.
    pub busy: Duration,
    /// Tuples touched by the last firing (intermediate volume).
    pub last_tuples_touched: u64,
    /// Pending (undelivered) result chunks.
    pub pending_results: usize,
    /// Result chunks this query's subscribers lost to bounded-queue
    /// overflow (per-query attribution of `EngineStats::dropped_chunks`).
    pub dropped: u64,
    /// Whether the query is paused.
    pub paused: bool,
}

/// Whole-network snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStats {
    /// Per-basket stats.
    pub baskets: Vec<BasketStats>,
    /// Per-query stats.
    pub queries: Vec<QueryStats>,
    /// Scheduler transition firings.
    pub total_firings: u64,
    /// Scheduler rounds.
    pub scheduler_rounds: u64,
    /// Basket-partitions in the query network (units of parallelism).
    pub partitions: usize,
    /// Configured scheduler worker threads.
    pub workers: usize,
    /// Result chunks dropped by bounded subscriber queues (drop-oldest
    /// overflow policy — see `DataCellConfig::emitter_capacity`).
    pub dropped_chunks: u64,
    /// Subplan nodes in the shared-execution DAG.
    pub shared_nodes: usize,
    /// DAG nodes referenced by ≥2 registered queries.
    pub shared_nodes_active: usize,
    /// Shared evaluations reused from the per-pass cache (evaluations
    /// saved by common-subplan factoring).
    pub shared_hits: u64,
    /// Shared evaluations that had to run (first query of the pass to
    /// reach the node).
    pub shared_misses: u64,
    /// Streams running with dropped durability (WAL detached after a
    /// write exhausted its retries).
    pub degraded_streams: usize,
    /// Pushes rejected by the memory budget (reject / pause-receptors
    /// shed policies).
    pub admission_rejected: u64,
    /// Queued result chunks shed by the memory budget (drop-oldest
    /// shed policy).
    pub admission_dropped_chunks: u64,
    /// Whether the memory budget currently has ingestion paused.
    pub ingest_paused: bool,
    /// Durability counters, when a WAL is attached (`None` = in-memory).
    pub wal: Option<WalStats>,
}

impl EngineStats {
    /// Render the analysis pane as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== baskets ==\n");
        out.push_str(
            "name            arrived   retired  buffered     bytes    pinned  state\n",
        );
        for b in &self.baskets {
            out.push_str(&format!(
                "{:<15} {:>8} {:>9} {:>9} {:>9} {:>9}  {}\n",
                b.name,
                b.arrived,
                b.retired,
                b.buffered,
                b.bytes,
                b.buffer_bytes,
                if b.degraded {
                    "degraded"
                } else if b.paused {
                    "paused"
                } else {
                    "live"
                }
            ));
        }
        out.push_str("== queries ==\n");
        out.push_str(
            "id   mode         firings  tuples_in tuples_out   busy_us  touched  dropped  state\n",
        );
        for q in &self.queries {
            out.push_str(&format!(
                "q{:<3} {:<12} {:>7} {:>10} {:>10} {:>9} {:>8} {:>8}  {}\n",
                q.id,
                q.mode,
                q.firings,
                q.tuples_in,
                q.tuples_out,
                q.busy.as_micros(),
                q.last_tuples_touched,
                q.dropped,
                if q.paused { "paused" } else { "active" }
            ));
        }
        out.push_str(&format!(
            "scheduler: {} firings over {} rounds ({} partitions, {} workers)\n",
            self.total_firings, self.scheduler_rounds, self.partitions, self.workers
        ));
        out.push_str(&format!(
            "emitters: {} chunks dropped (overflow)\n",
            self.dropped_chunks
        ));
        out.push_str(&format!(
            "shared: {} subplan nodes ({} shared), {} evaluations saved / {} computed\n",
            self.shared_nodes, self.shared_nodes_active, self.shared_hits, self.shared_misses
        ));
        if self.admission_rejected > 0 || self.admission_dropped_chunks > 0 || self.ingest_paused
        {
            out.push_str(&format!(
                "admission: {} pushes rejected, {} chunks shed, ingest {}\n",
                self.admission_rejected,
                self.admission_dropped_chunks,
                if self.ingest_paused { "PAUSED" } else { "flowing" }
            ));
        }
        if self.degraded_streams > 0 {
            out.push_str(&format!(
                "DEGRADED DURABILITY: {} stream(s) detached their WAL after retry \
                 exhaustion — ingest continues un-durably\n",
                self.degraded_streams
            ));
        }
        if let Some(w) = &self.wal {
            out.push_str(&format!(
                "wal: {} bytes, {} batches appended ({} synced), {} meta records, \
                 {} snapshots\n",
                w.wal_bytes, w.appended_batches, w.synced_batches, w.meta_records, w.snapshots
            ));
            out.push_str(&format!(
                "wal recovery: {} batches / {} rows replayed, {} bytes dropped, \
                 {} bytes reclaimed\n",
                w.recovered_batches, w.recovered_rows, w.dropped_bytes, w.reclaimed_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_sections() {
        let stats = EngineStats {
            baskets: vec![BasketStats {
                name: "sensors".into(),
                arrived: 100,
                retired: 40,
                buffered: 60,
                bytes: 960,
                buffer_bytes: 1024,
                paused: false,
                degraded: false,
            }],
            queries: vec![QueryStats {
                id: 1,
                sql: "SELECT 1".into(),
                mode: "incremental".into(),
                firings: 5,
                ..Default::default()
            }],
            total_firings: 5,
            scheduler_rounds: 3,
            partitions: 2,
            workers: 4,
            dropped_chunks: 9,
            shared_nodes: 3,
            shared_nodes_active: 2,
            shared_hits: 30,
            shared_misses: 10,
            degraded_streams: 0,
            admission_rejected: 0,
            admission_dropped_chunks: 0,
            ingest_paused: false,
            wal: None,
        };
        let text = stats.render();
        assert!(text.contains("sensors"));
        assert!(text.contains("q1"));
        assert!(text.contains("5 firings over 3 rounds (2 partitions, 4 workers)"));
        assert!(text.contains("emitters: 9 chunks dropped (overflow)"));
        assert!(text.contains("shared: 3 subplan nodes (2 shared), 30 evaluations saved / 10 computed"));
        assert!(!text.contains("wal:"));
        // The healthy render stays quiet about admission and degradation.
        assert!(!text.contains("admission:"));
        assert!(!text.contains("DEGRADED"));
    }

    #[test]
    fn render_is_loud_about_degradation_and_shedding() {
        let stats = EngineStats {
            baskets: vec![BasketStats {
                name: "trades".into(),
                degraded: true,
                ..Default::default()
            }],
            degraded_streams: 1,
            admission_rejected: 7,
            admission_dropped_chunks: 3,
            ingest_paused: true,
            ..Default::default()
        };
        let text = stats.render();
        assert!(text.contains("degraded"));
        assert!(text.contains("admission: 7 pushes rejected, 3 chunks shed, ingest PAUSED"));
        assert!(text.contains("DEGRADED DURABILITY: 1 stream(s)"));
    }

    #[test]
    fn render_includes_wal_section_when_durable() {
        let stats = EngineStats {
            wal: Some(WalStats {
                wal_bytes: 4096,
                appended_batches: 12,
                synced_batches: 8,
                meta_records: 30,
                recovered_batches: 2,
                recovered_rows: 100,
                dropped_bytes: 0,
                reclaimed_bytes: 512,
                snapshots: 1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let text = stats.render();
        assert!(text.contains("wal: 4096 bytes, 12 batches appended (8 synced)"));
        assert!(text.contains("wal recovery: 2 batches / 100 rows replayed"));
    }
}
