//! Engine observability: the signal plane over the metrics registry and
//! flight recorder of `datacell-obs`.
//!
//! [`EngineObs`] owns one [`Registry`] plus pre-registered handles for
//! every hot-path series, so recording is a relaxed atomic bump with no
//! name lookup, and one [`FlightRecorder`] holding the last few hundred
//! lifecycle events (DDL, registration, checkpoints, per-pass summaries,
//! drops). Everything is gated on
//! [`DataCellConfig::observability`](crate::DataCellConfig): when off,
//! every record method returns immediately and the engine skips arrival
//! stamping entirely.
//!
//! ## The chunk lifecycle, as latency series
//!
//! ```text
//! receptor ─▶ basket ─▶ factory fire ─▶ emitter queue ─▶ wire
//!    │ arrival tick │        │               │             │
//!    └─ basket_wait_us ──────┘               │             │
//!    └─ e2e_latency_us ──────────────────────┘             │
//!    └─ wire_delivery_us ──────────────────────────────────┘
//! ```
//!
//! * `basket_wait_us` — newest consumed tuple's arrival → factory fire.
//! * `factory_fire_us` — plan evaluation time of one firing.
//! * `e2e_latency_us` — arrival → result chunk handed to subscribers.
//! * `emitter_queue_us` — result enqueue → client dequeue.
//! * `wire_delivery_us` — arrival → bytes written to the client socket
//!   (recorded by the server frontend through
//!   [`EngineObs::record_wire_delivery_us`]).

use std::sync::Arc;
use std::time::Duration;

use datacell_obs::{Counter, FlightRecorder, Gauge, Histogram, MetricsSnapshot, Registry, TraceEvent};

/// How many lifecycle events the flight recorder retains.
const FLIGHT_RECORDER_CAPACITY: usize = 512;

/// The engine's observability hub: registry + flight recorder + cached
/// metric handles. Shared as `Arc<EngineObs>` between the engine, its
/// emitters, and the server frontend.
#[derive(Debug)]
pub struct EngineObs {
    enabled: bool,
    registry: Registry,
    recorder: FlightRecorder,

    pub(crate) ingest_batches: Arc<Counter>,
    pub(crate) ingest_rows: Arc<Counter>,
    pub(crate) firings: Arc<Counter>,
    pub(crate) fire_rows_in: Arc<Counter>,
    pub(crate) fire_rows_out: Arc<Counter>,
    pub(crate) emitter_dropped: Arc<Counter>,
    pub(crate) admission_rejected: Arc<Counter>,
    pub(crate) admission_dropped: Arc<Counter>,
    pub(crate) admission_pauses: Arc<Counter>,
    pub(crate) wal_degraded: Arc<Counter>,

    pub(crate) basket_buffered: Arc<Gauge>,
    pub(crate) basket_pinned_bytes: Arc<Gauge>,
    pub(crate) emitter_queued: Arc<Gauge>,

    pub(crate) pass_us: Arc<Histogram>,
    pub(crate) fire_us: Arc<Histogram>,
    pub(crate) basket_wait_us: Arc<Histogram>,
    pub(crate) e2e_us: Arc<Histogram>,
    pub(crate) emitter_queue_us: Arc<Histogram>,
    wire_delivery_us: Arc<Histogram>,
}

impl EngineObs {
    /// Build the hub, registering every engine series. `enabled = false`
    /// turns all recording into no-ops (the registry still renders, all
    /// zeros).
    pub fn new(enabled: bool) -> Self {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        let g = |name: &str, help: &str| registry.gauge(name, help);
        let h = |name: &str, help: &str| registry.histogram(name, help);
        EngineObs {
            ingest_batches: c("datacell_ingest_batches_total", "ingest batches accepted"),
            ingest_rows: c("datacell_ingest_rows_total", "stream tuples accepted"),
            firings: c("datacell_firings_total", "factory firings"),
            fire_rows_in: c("datacell_fire_rows_in_total", "stream tuples consumed by firings"),
            fire_rows_out: c("datacell_fire_rows_out_total", "result tuples produced by firings"),
            emitter_dropped: c(
                "datacell_emitter_dropped_chunks_total",
                "result chunks dropped by bounded subscriber queues",
            ),
            admission_rejected: c(
                "datacell_admission_rejected_total",
                "pushes rejected by the memory budget (reject / pause-receptors policy)",
            ),
            admission_dropped: c(
                "datacell_admission_dropped_chunks_total",
                "queued result chunks shed by the memory budget (drop-oldest policy)",
            ),
            admission_pauses: c(
                "datacell_admission_pauses_total",
                "times the memory budget paused ingestion (pause-receptors policy)",
            ),
            wal_degraded: c(
                "datacell_wal_degraded_streams_total",
                "streams that dropped durability after a WAL write exhausted its retries",
            ),
            basket_buffered: g("datacell_basket_buffered_tuples", "live tuples across baskets"),
            basket_pinned_bytes: g(
                "datacell_basket_pinned_bytes",
                "bytes pinned by basket buffers (incl. retired-but-uncompacted prefixes)",
            ),
            emitter_queued: g(
                "datacell_emitter_queued_chunks",
                "result chunks buffered across subscriber queues",
            ),
            pass_us: h("datacell_scheduler_pass_us", "scheduler pass duration (us)"),
            fire_us: h("datacell_factory_fire_us", "single factory firing duration (us)"),
            basket_wait_us: h(
                "datacell_basket_wait_us",
                "newest consumed tuple: basket arrival to factory fire (us)",
            ),
            e2e_us: h(
                "datacell_e2e_latency_us",
                "ingest arrival to result delivery into subscriber queues (us)",
            ),
            emitter_queue_us: h(
                "datacell_emitter_queue_us",
                "result chunk time spent in a subscriber queue (us)",
            ),
            wire_delivery_us: h(
                "datacell_wire_delivery_us",
                "ingest arrival to result bytes on the client socket (us)",
            ),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            registry,
            enabled,
        }
    }

    /// Whether recording is live (`DataCellConfig::observability`).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying registry (snapshot/render access).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot every engine series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Record one lifecycle event into the flight recorder.
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) {
        if self.enabled {
            self.recorder.record(kind, detail);
        }
    }

    /// Drain up to `n` most-recent flight-recorder events (all when
    /// `None`), oldest first.
    pub fn drain_events(&self, n: Option<usize>) -> Vec<TraceEvent> {
        self.recorder.drain_recent(n)
    }

    /// Total events ever recorded (including ones the bounded ring evicted).
    pub fn events_recorded(&self) -> u64 {
        self.recorder.recorded()
    }

    pub(crate) fn record_ingest(&self, rows: usize) {
        if self.enabled && rows > 0 {
            self.ingest_batches.inc();
            self.ingest_rows.add(rows as u64);
        }
    }

    pub(crate) fn record_pass(&self, elapsed: Duration) {
        if self.enabled {
            self.pass_us.record_duration(elapsed);
        }
    }

    pub(crate) fn record_fire(&self, elapsed: Duration, rows_in: u64, rows_out: u64) {
        if self.enabled {
            self.firings.inc();
            self.fire_us.record_duration(elapsed);
            self.fire_rows_in.add(rows_in);
            self.fire_rows_out.add(rows_out);
        }
    }

    pub(crate) fn record_basket_wait(&self, waited: Duration) {
        if self.enabled {
            self.basket_wait_us.record_duration(waited);
        }
    }

    pub(crate) fn record_e2e(&self, elapsed: Duration) {
        if self.enabled {
            self.e2e_us.record_duration(elapsed);
        }
    }

    pub(crate) fn record_emitter_drops(&self, n: u64) {
        if self.enabled && n > 0 {
            self.emitter_dropped.add(n);
        }
    }

    pub(crate) fn record_admission_rejected(&self) {
        if self.enabled {
            self.admission_rejected.inc();
        }
    }

    pub(crate) fn record_admission_dropped(&self, n: u64) {
        if self.enabled && n > 0 {
            self.admission_dropped.add(n);
        }
    }

    pub(crate) fn record_admission_pause(&self) {
        if self.enabled {
            self.admission_pauses.inc();
        }
    }

    /// Record a degraded-durability escalation: one stream detached its
    /// WAL after a write exhausted its retries. Loud on purpose — counter
    /// plus flight-recorder event.
    pub(crate) fn record_degraded(&self, stream: &str, reason: &str) {
        if self.enabled {
            self.wal_degraded.inc();
            self.event("degraded", format!("stream {stream} dropped durability: {reason}"));
        }
    }

    /// Emitter-queue latency handle for [`crate::emitter::channel_obs`]
    /// (`None` when recording is off).
    pub(crate) fn emitter_queue_handle(&self) -> Option<Arc<Histogram>> {
        self.enabled.then(|| Arc::clone(&self.emitter_queue_us))
    }

    /// Record arrival→socket latency for one delivered chunk (server
    /// frontend; microseconds).
    pub fn record_wire_delivery_us(&self, us: u64) {
        if self.enabled {
            self.wire_delivery_us.record(us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing() {
        let obs = EngineObs::new(false);
        obs.record_ingest(10);
        obs.record_fire(Duration::from_micros(5), 10, 1);
        obs.record_e2e(Duration::from_micros(5));
        obs.record_emitter_drops(3);
        obs.record_wire_delivery_us(9);
        obs.event("x", "ignored");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("datacell_ingest_rows_total"), Some(0));
        assert_eq!(snap.counter("datacell_firings_total"), Some(0));
        assert_eq!(snap.histogram("datacell_e2e_latency_us").map(|h| h.count), Some(0));
        assert!(obs.drain_events(None).is_empty());
        assert!(obs.emitter_queue_handle().is_none());
    }

    #[test]
    fn enabled_hub_records_everything() {
        let obs = EngineObs::new(true);
        obs.record_ingest(10);
        obs.record_fire(Duration::from_micros(5), 10, 2);
        obs.record_basket_wait(Duration::from_micros(3));
        obs.record_e2e(Duration::from_micros(7));
        obs.record_emitter_drops(3);
        obs.record_wire_delivery_us(9);
        obs.event("register", "q1");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("datacell_ingest_rows_total"), Some(10));
        assert_eq!(snap.counter("datacell_fire_rows_out_total"), Some(2));
        assert_eq!(snap.counter("datacell_emitter_dropped_chunks_total"), Some(3));
        assert_eq!(snap.histogram("datacell_wire_delivery_us").map(|h| h.count), Some(1));
        assert_eq!(obs.drain_events(None).len(), 1);
        assert!(obs.emitter_queue_handle().is_some());
        // The exported page is valid Prometheus text.
        datacell_obs::parse_prometheus(&snap.render_prometheus()).expect("valid exposition");
    }
}
