//! Engine error type.

use std::fmt;

use datacell_plan::PlanError;
use datacell_sql::ParseError;
use datacell_storage::StorageError;

/// Errors surfaced by the DataCell engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL parse error.
    Parse(ParseError),
    /// Storage error.
    Storage(StorageError),
    /// Planner/executor error.
    Plan(PlanError),
    /// Unknown continuous query id.
    UnknownQuery(u64),
    /// Unknown stream (no basket registered).
    UnknownStream(String),
    /// Statement kind not valid in this API (e.g. SELECT via `execute`).
    InvalidStatement(String),
    /// Durability-layer failure (WAL append, snapshot or recovery).
    Wal(String),
    /// Admission control shed this request: the engine is over its
    /// [`MemoryBudget`](crate::MemoryBudget). Retryable — back off for the
    /// suggested interval and push again.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::UnknownQuery(id) => write!(f, "unknown continuous query: q{id}"),
            EngineError::UnknownStream(s) => write!(f, "unknown stream: {s}"),
            EngineError::InvalidStatement(m) => write!(f, "invalid statement: {m}"),
            EngineError::Wal(m) => write!(f, "durability error: {m}"),
            EngineError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry in {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}
impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// Convenience alias used throughout the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;
