//! Receptors: per-stream ingestion threads.
//!
//! "It contains receptors and emitters, i.e., a set of separate processes
//! per stream and per client, respectively, to listen for new data and to
//! deliver results. They form the edges of the architecture and the bridges
//! to the outside world, e.g., to sensor drivers." (paper §3)
//!
//! A [`Receptor`] pulls rows from any iterator (a replayed trace, a
//! generator, a socket adapter) and appends them to its basket, optionally
//! rate-limited — the demo's "streamed in the system at rates which are
//! configurable" knob.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use datacell_storage::Row;

use crate::factory::BasketHandle;

/// A running ingestion thread.
pub struct Receptor {
    name: String,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<u64>,
}

/// Ingestion batch size: rows appended per basket lock acquisition.
const BATCH: usize = 256;

impl Receptor {
    /// Spawn a receptor feeding `basket` from `rows`.
    ///
    /// `rate` limits ingestion to roughly that many tuples/second
    /// (None = as fast as possible). The thread stops when the iterator is
    /// exhausted or [`Receptor::stop`] is called; it returns the number of
    /// tuples delivered.
    pub fn spawn(
        name: impl Into<String>,
        basket: BasketHandle,
        rows: impl IntoIterator<Item = Row> + Send + 'static,
        rate: Option<f64>,
    ) -> Receptor {
        let name = name.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("receptor-{name}"))
            .spawn(move || {
                let started = Instant::now();
                let mut delivered = 0u64;
                let mut batch: Vec<Row> = Vec::with_capacity(BATCH);
                let mut iter = rows.into_iter();
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    batch.clear();
                    for _ in 0..BATCH {
                        match iter.next() {
                            Some(r) => batch.push(r),
                            None => break,
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    // Paused baskets drop the batch on the floor after a
                    // short backoff, mirroring a receiver with no buffer.
                    let accepted = basket
                        .write()
                        .push_rows(&batch)
                        .unwrap_or(0);
                    delivered += accepted as u64;
                    if accepted == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    if let Some(rate) = rate {
                        // Pace: delivered / elapsed <= rate.
                        let target = delivered as f64 / rate;
                        let elapsed = started.elapsed().as_secs_f64();
                        if target > elapsed {
                            std::thread::sleep(Duration::from_secs_f64(target - elapsed));
                        }
                    }
                }
                delivered
            })
            // lint:allow(panic-freedom): thread spawn fails only on resource exhaustion at startup; no stream exists yet to lose
            .expect("spawn receptor thread");
        Receptor { name, stop, handle }
    }

    /// Receptor (stream) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signal the thread to stop after its current batch.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stop and join, returning tuples delivered.
    pub fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or(0)
    }

    /// Join without signalling (waits for the iterator to finish).
    pub fn join(self) -> u64 {
        self.handle.join().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basket::Basket;
    use datacell_storage::{DataType, Schema, Value};
    use parking_lot::RwLock;

    fn basket() -> BasketHandle {
        Arc::new(RwLock::new(Basket::new(
            "s",
            Schema::of(&[("v", DataType::Int)]),
        )))
    }

    #[test]
    fn delivers_all_rows() {
        let b = basket();
        let rows: Vec<Row> = (0..1000).map(|i| vec![Value::Int(i)]).collect();
        let r = Receptor::spawn("s", b.clone(), rows, None);
        let delivered = r.join();
        assert_eq!(delivered, 1000);
        assert_eq!(b.read().len(), 1000);
    }

    #[test]
    fn stop_interrupts_long_stream() {
        let b = basket();
        // Endless generator.
        let rows = (0..).map(|i| vec![Value::Int(i)]);
        let r = Receptor::spawn("s", b.clone(), IterAdapter(rows), None);
        std::thread::sleep(Duration::from_millis(5));
        let delivered = r.stop();
        assert!(delivered > 0);
        assert_eq!(b.read().arrived(), delivered);
    }

    /// Adapter: any Iterator is IntoIterator, but the endless map above
    /// needs an explicit Send wrapper to satisfy the bound cleanly.
    struct IterAdapter<I>(I);
    impl<I: Iterator<Item = Row>> IntoIterator for IterAdapter<I> {
        type Item = Row;
        type IntoIter = I;
        fn into_iter(self) -> I {
            self.0
        }
    }

    #[test]
    fn stop_after_exhaustion_returns_full_count() {
        let b = basket();
        let rows: Vec<Row> = (0..300).map(|i| vec![Value::Int(i)]).collect();
        let r = Receptor::spawn("s", b.clone(), rows, None);
        // Wait for the iterator to drain, then stop() — the thread has
        // already finished; stop() must still join cleanly and report
        // everything that was delivered.
        while b.read().arrived() < 300 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(r.stop(), 300);
    }

    #[test]
    fn request_stop_then_join_returns_delivered_count() {
        let b = basket();
        let rows = (0..).map(|i| vec![Value::Int(i)]);
        let r = Receptor::spawn("s", b.clone(), IterAdapter(rows), None);
        while b.read().arrived() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        r.request_stop();
        let delivered = r.join();
        assert!(delivered > 0);
        assert_eq!(b.read().arrived(), delivered);
    }

    #[test]
    fn name_is_preserved() {
        let b = basket();
        let r = Receptor::spawn("trades", b, Vec::<Row>::new(), None);
        assert_eq!(r.name(), "trades");
        assert_eq!(r.join(), 0);
    }

    #[test]
    fn paused_basket_accepts_nothing() {
        let b = basket();
        b.write().set_paused(true);
        let rows: Vec<Row> = (0..512).map(|i| vec![Value::Int(i)]).collect();
        let r = Receptor::spawn("s", b.clone(), rows, None);
        assert_eq!(r.join(), 0, "a paused basket drops every batch");
        assert_eq!(b.read().len(), 0);
    }

    #[test]
    fn rate_limiting_slows_ingestion() {
        let b = basket();
        let rows: Vec<Row> = (0..600).map(|i| vec![Value::Int(i)]).collect();
        let started = Instant::now();
        // 256-row batches at 20k rows/s → ≥ ~25ms for 600 rows.
        let r = Receptor::spawn("s", b.clone(), rows, Some(20_000.0));
        r.join();
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert_eq!(b.read().len(), 600);
    }
}
