//! # datacell-core
//!
//! The DataCell runtime (paper Figure 1): **receptors** feed **baskets**,
//! **factories** hold continuous query plans, a Petri-net **scheduler**
//! fires them as events arrive, and **emitters** deliver results — all on
//! top of the columnar kernel, so "stream processing … becomes primarily a
//! query scheduling task" (paper §1).
//!
//! The scheduler groups factories into basket-partitions (connected
//! components under shared stream inputs) and can fire independent
//! partitions concurrently on a worker pool — see
//! [`DataCellConfig::workers`](config::DataCellConfig) and the module docs
//! of [`scheduler`].
//!
//! The facade type is [`DataCell`]:
//!
//! ```
//! use datacell_core::DataCell;
//!
//! let mut cell = DataCell::default();
//! cell.execute("CREATE STREAM s (ts TIMESTAMP, val BIGINT)").unwrap();
//! let q = cell.register_query("SELECT COUNT(*), SUM(val) FROM s").unwrap();
//! cell.push_rows("s", &[vec![1i64.into(), 10i64.into()],
//!                       vec![2i64.into(), 32i64.into()]]).unwrap();
//! cell.run_until_idle().unwrap();
//! let out = cell.take_results(q).unwrap();
//! assert_eq!(out[0].row(0), vec![2i64.into(), 42i64.into()]);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod basket;
pub mod config;
pub mod durability;
pub mod emitter;
pub mod engine;
pub mod error;
pub mod factory;
pub mod network;
pub mod obs;
pub mod receptor;
pub mod scheduler;
pub mod shared;
pub mod stats;

pub use admission::{MemoryBudget, ShedPolicy};
pub use basket::Basket;
pub use config::DataCellConfig;
pub use durability::EngineWal;
pub use emitter::{Emitter, EmitterSender};
pub use engine::{DataCell, ExecOutcome, QueryId};
pub use error::{EngineError, Result};
pub use factory::{
    BasketHandle, CursorState, Factory, FactoryState, FactoryStats, FireContext, IncrMeta,
};
pub use network::{NetworkEdge, QueryNetwork};
pub use obs::EngineObs;
pub use receptor::Receptor;
pub use scheduler::{NetState, Partition, Scheduler};
pub use shared::{PassCache, SharedNode, SharedPlanDag};
pub use stats::{BasketStats, EngineStats, QueryStats};

// Re-export the execution mode so engine users don't need datacell-plan.
pub use datacell_plan::ExecutionMode;
// Re-export the durability configuration so engine users don't need
// datacell-wal.
pub use datacell_wal::{RetryPolicy, SyncPolicy, WalConfig, WalStats};
// Re-export the fault-injection surface so chaos tests and benches can
// build plans without depending on datacell-faults directly (the
// layering rule admits `faults` only below `core`).
pub use datacell_faults::{FaultKind, FaultPlan, FaultPoint, FaultRule, Faults, Trigger};
// Re-export the observability snapshot types (and the exposition-format
// validator) so engine users don't need datacell-obs.
pub use datacell_obs::{
    parse_prometheus, Counter, Gauge, HistogramSnapshot, MetricsSnapshot, TraceEvent,
};

