//! Emitters: result delivery to clients.
//!
//! The counterpart of receptors on the output edge (paper §3, Figure 1):
//! each continuous query's result chunks are pushed into subscriber
//! channels; an [`Emitter`] wraps one such channel and gives clients
//! blocking, polling and draining access.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use datacell_storage::Chunk;

/// Create a connected (sender, emitter) pair for one query's results.
pub fn channel(query: u64, capacity: Option<usize>) -> (Sender<Chunk>, Emitter) {
    let (tx, rx) = match capacity {
        Some(n) => crossbeam::channel::bounded(n),
        None => crossbeam::channel::unbounded(),
    };
    (tx, Emitter { query, rx })
}

/// Client-side handle receiving one query's result chunks.
pub struct Emitter {
    query: u64,
    rx: Receiver<Chunk>,
}

impl Emitter {
    /// The query this emitter listens to.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Non-blocking poll for the next result chunk.
    pub fn try_next(&self) -> Option<Chunk> {
        match self.rx.try_recv() {
            Ok(c) => Some(c),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Block up to `timeout` for the next result chunk.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Chunk> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Some(c),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain everything currently buffered.
    pub fn drain(&self) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = self.try_next() {
            out.push(c);
        }
        out
    }

    /// Total rows across everything currently buffered (consumes them).
    pub fn drain_rows(&self) -> usize {
        self.drain().iter().map(Chunk::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Bat;

    #[test]
    fn try_next_and_drain() {
        let (tx, em) = channel(7, None);
        assert_eq!(em.query(), 7);
        assert!(em.try_next().is_none());
        tx.send(Chunk::new(vec![Bat::from_ints(vec![1, 2])]).unwrap()).unwrap();
        tx.send(Chunk::new(vec![Bat::from_ints(vec![3])]).unwrap()).unwrap();
        assert_eq!(em.drain_rows(), 3);
        assert!(em.try_next().is_none());
    }

    #[test]
    fn timeout_returns_none_on_disconnect() {
        let (tx, em) = channel(1, Some(4));
        drop(tx);
        assert!(em.next_timeout(Duration::from_millis(5)).is_none());
    }
}
