//! Emitters: result delivery to clients.
//!
//! The counterpart of receptors on the output edge (paper §3, Figure 1):
//! each continuous query's result chunks are pushed into subscriber
//! queues; an [`Emitter`] wraps one such queue and gives clients
//! blocking, polling and draining access, while the engine keeps the
//! matching [`EmitterSender`].
//!
//! # Overflow policy
//!
//! A subscriber queue is **bounded** (see
//! [`DataCellConfig::emitter_capacity`](crate::config::DataCellConfig)):
//! when a slow client falls more than `capacity` chunks behind, the
//! **oldest** buffered chunks are dropped to make room — streaming clients
//! care about fresh results, and an unbounded queue is an OOM hazard. Every
//! drop is counted; the engine surfaces the total as
//! [`EngineStats::dropped_chunks`](crate::stats::EngineStats). A capacity
//! of `None` keeps the historical unbounded behaviour.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use datacell_obs::Histogram;
use datacell_storage::Chunk;

/// Error returned by [`EmitterSender::send`] when the [`Emitter`] was
/// dropped: the client is gone, so the chunk is handed back.
#[derive(Debug, Clone, PartialEq)]
pub struct Disconnected(pub Chunk);

struct Shared {
    /// Buffered chunks, each with its enqueue tick (for queue-latency
    /// observability; the tick costs one `Instant::now` per send).
    queue: Mutex<VecDeque<(Instant, Chunk)>>,
    avail: Condvar,
    /// `None` = unbounded (historical behaviour).
    capacity: Option<usize>,
    /// Chunks dropped to make room (overflow policy: drop-oldest).
    dropped: AtomicU64,
    /// Sender side gone: no more chunks will ever arrive.
    closed: AtomicBool,
    /// Receiver side gone: sends fail.
    receiver_gone: AtomicBool,
    /// Observability: enqueue→dequeue latency sink (engine registry's
    /// `datacell_emitter_queue_us`). `None` = don't record.
    queue_us: Option<Arc<Histogram>>,
}

impl Shared {
    /// Unwrap a popped entry, recording its queue dwell time.
    fn dequeued(&self, (enqueued, chunk): (Instant, Chunk)) -> Chunk {
        if let Some(h) = &self.queue_us {
            h.record_duration(enqueued.elapsed());
        }
        chunk
    }
}

/// Create a connected (sender, emitter) pair for one query's results.
///
/// `capacity` bounds the queue; overflow drops the oldest chunk (counted).
/// `None` = unbounded.
pub fn channel(query: u64, capacity: Option<usize>) -> (EmitterSender, Emitter) {
    channel_obs(query, capacity, None)
}

/// [`channel`], plus an optional histogram receiving each chunk's
/// enqueue→dequeue dwell time in microseconds (the engine wires the
/// registry's `datacell_emitter_queue_us` here when observability is on).
pub fn channel_obs(
    query: u64,
    capacity: Option<usize>,
    queue_us: Option<Arc<Histogram>>,
) -> (EmitterSender, Emitter) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        avail: Condvar::new(),
        capacity,
        dropped: AtomicU64::new(0),
        closed: AtomicBool::new(false),
        receiver_gone: AtomicBool::new(false),
        queue_us,
    });
    (
        EmitterSender { query, shared: shared.clone() },
        Emitter { query, shared },
    )
}

/// Engine-side handle delivering one subscriber's result chunks.
pub struct EmitterSender {
    query: u64,
    shared: Arc<Shared>,
}

impl EmitterSender {
    /// The query this sender delivers for.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Enqueue a chunk for the client. Returns how many old chunks were
    /// dropped to stay within capacity (0 when the queue had room), or
    /// [`Disconnected`] when the emitter side is gone.
    pub fn send(&self, chunk: Chunk) -> Result<usize, Disconnected> {
        if self.shared.receiver_gone.load(Ordering::Acquire) {
            return Err(Disconnected(chunk));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back((Instant::now(), chunk));
        let mut dropped = 0usize;
        if let Some(cap) = self.shared.capacity {
            while q.len() > cap.max(1) {
                // Overflow drop: deliberately NOT routed through
                // `dequeued` — the entry's tick and the chunk's ingest
                // stamp die here, so a dropped chunk contributes neither
                // a queue-dwell nor a wire-delivery sample. METRICS
                // latency chains cover delivered chunks only.
                let _ = q.pop_front();
                dropped += 1;
            }
        }
        drop(q);
        if dropped > 0 {
            self.shared.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        self.shared.avail.notify_one();
        Ok(dropped)
    }

    /// Admission-control shedding: drop the oldest buffered chunks down
    /// to `keep`, returning how many were dropped. Like overflow drops,
    /// shed chunks are counted in [`EmitterSender::dropped`] and
    /// contribute no latency samples.
    pub fn shed_to(&self, keep: usize) -> usize {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut dropped = 0usize;
        while q.len() > keep {
            let _ = q.pop_front();
            dropped += 1;
        }
        drop(q);
        if dropped > 0 {
            self.shared.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped
    }

    /// Total chunks this subscriber has lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// True once the matching [`Emitter`] was dropped.
    pub fn is_disconnected(&self) -> bool {
        self.shared.receiver_gone.load(Ordering::Acquire)
    }

    /// Chunks currently buffered (queue occupancy gauge).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Mark the stream finished: the emitter drains what is buffered and
    /// then observes disconnection (engine shutdown hook).
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.avail.notify_all();
    }
}

impl Drop for EmitterSender {
    fn drop(&mut self) {
        self.close();
    }
}

/// Client-side handle receiving one query's result chunks.
pub struct Emitter {
    query: u64,
    shared: Arc<Shared>,
}

impl Emitter {
    /// The query this emitter listens to.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Non-blocking poll for the next result chunk.
    pub fn try_next(&self) -> Option<Chunk> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
            .map(|entry| self.shared.dequeued(entry))
    }

    /// Block up to `timeout` for the next result chunk. Returns `None` on
    /// timeout or once the sender is gone and the queue is drained.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Chunk> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(entry) = q.pop_front() {
                return Some(self.shared.dequeued(entry));
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return None;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, res) = self
                .shared
                .avail
                .wait_timeout(q, left)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            if res.timed_out() {
                return q.pop_front().map(|entry| self.shared.dequeued(entry));
            }
        }
    }

    /// True once the sender is gone (no more chunks will ever arrive;
    /// buffered chunks remain readable).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Chunks this subscription lost to overflow (drop-oldest policy).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Drain everything currently buffered.
    pub fn drain(&self) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = self.try_next() {
            out.push(c);
        }
        out
    }

    /// Total rows across everything currently buffered (consumes them).
    pub fn drain_rows(&self) -> usize {
        self.drain().iter().map(Chunk::len).sum()
    }
}

impl Drop for Emitter {
    fn drop(&mut self) {
        self.shared.receiver_gone.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Bat;

    fn chunk(vals: Vec<i64>) -> Chunk {
        Chunk::new(vec![Bat::from_ints(vals)]).unwrap()
    }

    #[test]
    fn try_next_and_drain() {
        let (tx, em) = channel(7, None);
        assert_eq!(em.query(), 7);
        assert_eq!(tx.query(), 7);
        assert!(em.try_next().is_none());
        tx.send(chunk(vec![1, 2])).unwrap();
        tx.send(chunk(vec![3])).unwrap();
        assert_eq!(em.drain_rows(), 3);
        assert!(em.try_next().is_none());
    }

    #[test]
    fn timeout_returns_none_on_disconnect() {
        let (tx, em) = channel(1, Some(4));
        drop(tx);
        assert!(em.is_closed());
        assert!(em.next_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn bounded_overflow_drops_oldest() {
        let (tx, em) = channel(1, Some(2));
        assert_eq!(tx.send(chunk(vec![1])).unwrap(), 0);
        assert_eq!(tx.send(chunk(vec![2])).unwrap(), 0);
        // Third chunk evicts the oldest (1).
        assert_eq!(tx.send(chunk(vec![3])).unwrap(), 1);
        assert_eq!(tx.dropped(), 1);
        assert_eq!(em.dropped(), 1);
        let got = em.drain();
        assert_eq!(got, vec![chunk(vec![2]), chunk(vec![3])]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, em) = channel(1, None);
        drop(em);
        assert!(tx.is_disconnected());
        assert_eq!(tx.send(chunk(vec![1])), Err(Disconnected(chunk(vec![1]))));
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, em) = channel(1, None);
        tx.send(chunk(vec![9])).unwrap();
        tx.close();
        // Buffered chunk still readable, then end-of-stream.
        assert_eq!(em.next_timeout(Duration::from_millis(50)), Some(chunk(vec![9])));
        assert!(em.next_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn queue_dwell_time_is_recorded() {
        let h = Arc::new(Histogram::new());
        let (tx, em) = channel_obs(1, None, Some(h.clone()));
        tx.send(chunk(vec![1])).unwrap();
        tx.send(chunk(vec![2])).unwrap();
        assert_eq!(tx.queued(), 2);
        assert!(em.try_next().is_some());
        assert_eq!(em.next_timeout(Duration::from_millis(50)), Some(chunk(vec![2])));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2, "one dwell sample per dequeued chunk");
        assert_eq!(tx.queued(), 0);
    }

    #[test]
    fn dropped_chunks_record_no_latency_samples() {
        let h = Arc::new(Histogram::new());
        let (tx, em) = channel_obs(1, Some(2), Some(h.clone()));
        for i in 0..5 {
            tx.send(chunk(vec![i])).unwrap();
        }
        assert_eq!(tx.dropped(), 3, "three chunks overflowed");
        // Only the two delivered chunks produce dwell samples; the
        // dropped ones (and their ingest stamps) must not leak into the
        // latency chain.
        assert_eq!(em.drain().len(), 2);
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn shed_to_drops_oldest_and_counts() {
        let (tx, em) = channel(1, None);
        for i in 0..4 {
            tx.send(chunk(vec![i])).unwrap();
        }
        assert_eq!(tx.shed_to(1), 3);
        assert_eq!(tx.shed_to(1), 0, "already at target");
        assert_eq!(tx.dropped(), 3);
        // The newest chunk survives.
        assert_eq!(em.drain(), vec![chunk(vec![3])]);
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let (tx, em) = channel(1, Some(8));
        let t = std::thread::spawn(move || em.next_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        tx.send(chunk(vec![42])).unwrap();
        assert_eq!(t.join().unwrap(), Some(chunk(vec![42])));
    }
}
