//! Durability policy: what the engine writes to the WAL and how it reads
//! it back.
//!
//! The `datacell-wal` crate moves opaque CRC-framed records; this module
//! owns their payloads. Three kinds of state are persisted:
//!
//! * **stream data** — ingest batches, logged by [`crate::Basket`] itself
//!   into per-stream segment logs (see `basket.rs`);
//! * **meta records** ([`MetaRecord`]) — DDL, table inserts, query
//!   registration/deregistration, pause flags, and a [`FactoryState`]
//!   *fire record* after every factory firing. The fire record is what
//!   makes the engine's *state* exactly-once across restart: the
//!   factory's resumable position is durable before its result chunk
//!   reaches any subscriber, so a restart neither re-fires a consumed
//!   window nor skips an unconsumed one. Delivery to a subscriber that is
//!   live at the instant of the crash is at-most-once for the in-flight
//!   chunk (true end-to-end exactly-once would need client acks); a
//!   re-subscribing client sees the exact continuation, no duplicates;
//! * **catalog snapshots** ([`SnapshotData`]) — a compaction point written
//!   by [`crate::DataCell::checkpoint`]: the whole catalog (streams,
//!   tables *with contents*, registered queries with their states) in one
//!   atomic record, after which the meta log restarts empty.
//!
//! Recovery (see `DataCell::open`) applies the snapshot, replays the meta
//! log over it, rebuilds every basket from its stream log via the bulk
//! `Bat::extend_from_rows` append path, and restores each factory with
//! [`crate::Factory::restore`].

use datacell_faults::Faults;
use datacell_plan::ExecutionMode;
use datacell_storage::binio::{self, ByteReader};
use datacell_storage::{Chunk, Row, Schema, StorageError};
use datacell_wal::{io_for, StreamBatch, StreamLog, Wal, WalConfig, WalStats};

use crate::error::{EngineError, Result};
use crate::factory::{CursorState, FactoryState, IncrMeta};

fn werr(e: impl std::fmt::Display) -> EngineError {
    EngineError::Wal(e.to_string())
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

// ---- meta records -----------------------------------------------------

/// One meta-log record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MetaRecord {
    /// `CREATE STREAM` ran.
    CreateStream { name: String, schema: Schema },
    /// `CREATE TABLE` ran.
    CreateTable { name: String, schema: Schema },
    /// `DROP` ran.
    Drop { name: String },
    /// Rows were inserted into a table.
    TableInsert { name: String, rows: Vec<Row> },
    /// A continuous query was registered (with its initial state).
    Register { qid: u64, sql: String, mode: ExecutionMode, state: FactoryState },
    /// A continuous query was removed.
    Deregister { qid: u64 },
    /// A query was paused / resumed.
    QueryPaused { qid: u64, paused: bool },
    /// A stream's ingestion was paused / resumed.
    StreamPaused { name: String, paused: bool },
    /// A factory fired: its new resumable position.
    FireState { qid: u64, state: FactoryState },
    /// A checkpoint is being taken: everything before this marker is
    /// captured by the snapshot of the same epoch. Appended (and synced)
    /// *before* the snapshot rename, so a crash between the rename and
    /// the meta-log reset is recoverable: replay skips through the last
    /// marker whose epoch matches the snapshot instead of re-applying
    /// (and colliding with) pre-snapshot DDL.
    Checkpoint { epoch: u64 },
}

fn mode_tag(mode: ExecutionMode) -> u8 {
    match mode {
        ExecutionMode::Reevaluate => 0,
        ExecutionMode::Incremental => 1,
    }
}

fn mode_from_tag(tag: u8) -> std::result::Result<ExecutionMode, StorageError> {
    match tag {
        0 => Ok(ExecutionMode::Reevaluate),
        1 => Ok(ExecutionMode::Incremental),
        other => Err(corrupt(format!("unknown execution mode tag {other}"))),
    }
}

fn encode_factory_state(buf: &mut Vec<u8>, state: &FactoryState) {
    binio::put_u32(buf, state.cursors.len() as u32);
    for (binding, cs) in &state.cursors {
        binio::put_str(buf, binding);
        match cs {
            CursorState::Unwindowed { next } => {
                binio::put_u8(buf, 0);
                binio::put_u64(buf, *next);
            }
            CursorState::Rows { next_bw_end } => {
                binio::put_u8(buf, 1);
                binio::put_u64(buf, *next_bw_end);
            }
            CursorState::Range { next_bw_end, low_oid } => {
                binio::put_u8(buf, 2);
                binio::put_u8(buf, next_bw_end.is_some() as u8);
                binio::put_i64(buf, next_bw_end.unwrap_or(0));
                binio::put_u64(buf, *low_oid);
            }
        }
    }
    match &state.incr {
        IncrMeta::None => binio::put_u8(buf, 0),
        IncrMeta::Agg { spans } => {
            binio::put_u8(buf, 1);
            binio::put_u32(buf, spans.len() as u32);
            for (s, e) in spans {
                binio::put_u64(buf, *s);
                binio::put_u64(buf, *e);
            }
        }
        IncrMeta::Join { left, right, next_epoch } => {
            binio::put_u8(buf, 2);
            for side in [left, right] {
                binio::put_u32(buf, side.len() as u32);
                for (epoch, s, e) in side {
                    binio::put_u64(buf, *epoch);
                    binio::put_u64(buf, *s);
                    binio::put_u64(buf, *e);
                }
            }
            binio::put_u64(buf, *next_epoch);
        }
    }
}

fn decode_factory_state(
    r: &mut ByteReader<'_>,
) -> std::result::Result<FactoryState, StorageError> {
    let n = r.u32()? as usize;
    let mut cursors = Vec::new();
    for _ in 0..n {
        let binding = r.str()?;
        let cs = match r.u8()? {
            0 => CursorState::Unwindowed { next: r.u64()? },
            1 => CursorState::Rows { next_bw_end: r.u64()? },
            2 => {
                let has = r.u8()? != 0;
                let end = r.i64()?;
                CursorState::Range {
                    next_bw_end: has.then_some(end),
                    low_oid: r.u64()?,
                }
            }
            other => return Err(corrupt(format!("unknown cursor tag {other}"))),
        };
        cursors.push((binding, cs));
    }
    let incr = match r.u8()? {
        0 => IncrMeta::None,
        1 => {
            let n = r.u32()? as usize;
            let mut spans = Vec::new();
            for _ in 0..n {
                spans.push((r.u64()?, r.u64()?));
            }
            IncrMeta::Agg { spans }
        }
        2 => {
            let mut sides = [Vec::new(), Vec::new()];
            for side in &mut sides {
                let n = r.u32()? as usize;
                for _ in 0..n {
                    side.push((r.u64()?, r.u64()?, r.u64()?));
                }
            }
            let [left, right] = sides;
            IncrMeta::Join { left, right, next_epoch: r.u64()? }
        }
        other => return Err(corrupt(format!("unknown incr tag {other}"))),
    };
    Ok(FactoryState { cursors, incr })
}

impl MetaRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            MetaRecord::CreateStream { name, schema } => {
                binio::put_u8(&mut buf, 1);
                binio::put_str(&mut buf, name);
                binio::encode_schema(&mut buf, schema);
            }
            MetaRecord::CreateTable { name, schema } => {
                binio::put_u8(&mut buf, 2);
                binio::put_str(&mut buf, name);
                binio::encode_schema(&mut buf, schema);
            }
            MetaRecord::Drop { name } => {
                binio::put_u8(&mut buf, 3);
                binio::put_str(&mut buf, name);
            }
            MetaRecord::TableInsert { name, rows } => {
                binio::put_u8(&mut buf, 4);
                binio::put_str(&mut buf, name);
                // Self-describing batch: infer a column type per position
                // from the first non-NULL value (INSERT rows are already
                // validated against the table schema, so this is exact up
                // to NULL-only columns, which decode as NULL anyway).
                let arity = rows.first().map_or(0, Vec::len);
                let cols: Vec<datacell_storage::ColumnDef> = (0..arity)
                    .map(|j| {
                        let ty = rows
                            .iter()
                            .find_map(|row| row[j].data_type())
                            .unwrap_or(datacell_storage::DataType::Int);
                        datacell_storage::ColumnDef::new(format!("c{j}"), ty)
                    })
                    .collect();
                binio::encode_batch(&mut buf, &Schema::new(cols), rows);
            }
            MetaRecord::Register { qid, sql, mode, state } => {
                binio::put_u8(&mut buf, 5);
                binio::put_u64(&mut buf, *qid);
                binio::put_str(&mut buf, sql);
                binio::put_u8(&mut buf, mode_tag(*mode));
                encode_factory_state(&mut buf, state);
            }
            MetaRecord::Deregister { qid } => {
                binio::put_u8(&mut buf, 6);
                binio::put_u64(&mut buf, *qid);
            }
            MetaRecord::QueryPaused { qid, paused } => {
                binio::put_u8(&mut buf, 7);
                binio::put_u64(&mut buf, *qid);
                binio::put_u8(&mut buf, *paused as u8);
            }
            MetaRecord::StreamPaused { name, paused } => {
                binio::put_u8(&mut buf, 8);
                binio::put_str(&mut buf, name);
                binio::put_u8(&mut buf, *paused as u8);
            }
            MetaRecord::FireState { qid, state } => {
                binio::put_u8(&mut buf, 9);
                binio::put_u64(&mut buf, *qid);
                encode_factory_state(&mut buf, state);
            }
            MetaRecord::Checkpoint { epoch } => {
                binio::put_u8(&mut buf, 10);
                binio::put_u64(&mut buf, *epoch);
            }
        }
        buf
    }

    fn decode(bytes: &[u8]) -> std::result::Result<MetaRecord, StorageError> {
        let mut r = ByteReader::new(bytes);
        let rec = match r.u8()? {
            1 => MetaRecord::CreateStream { name: r.str()?, schema: binio::decode_schema(&mut r)? },
            2 => MetaRecord::CreateTable { name: r.str()?, schema: binio::decode_schema(&mut r)? },
            3 => MetaRecord::Drop { name: r.str()? },
            4 => MetaRecord::TableInsert { name: r.str()?, rows: binio::decode_batch(&mut r)? },
            5 => MetaRecord::Register {
                qid: r.u64()?,
                sql: r.str()?,
                mode: mode_from_tag(r.u8()?)?,
                state: decode_factory_state(&mut r)?,
            },
            6 => MetaRecord::Deregister { qid: r.u64()? },
            7 => MetaRecord::QueryPaused { qid: r.u64()?, paused: r.u8()? != 0 },
            8 => MetaRecord::StreamPaused { name: r.str()?, paused: r.u8()? != 0 },
            9 => MetaRecord::FireState { qid: r.u64()?, state: decode_factory_state(&mut r)? },
            10 => MetaRecord::Checkpoint { epoch: r.u64()? },
            other => return Err(corrupt(format!("unknown meta record tag {other}"))),
        };
        Ok(rec)
    }
}

// ---- catalog snapshots ------------------------------------------------

const SNAPSHOT_MAGIC: u32 = 0x4443_5331; // "DCS1"

/// A registered query as the snapshot stores it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuerySnapshot {
    pub qid: u64,
    pub sql: String,
    pub mode: ExecutionMode,
    pub paused: bool,
    pub state: FactoryState,
}

/// The whole-catalog snapshot payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SnapshotData {
    /// Checkpoint epoch — pairs the snapshot with the
    /// [`MetaRecord::Checkpoint`] marker written just before it.
    pub epoch: u64,
    pub next_qid: u64,
    /// `(name, schema, paused)` per stream.
    pub streams: Vec<(String, Schema, bool)>,
    /// `(name, schema, contents)` per table.
    pub tables: Vec<(String, Schema, Chunk)>,
    pub queries: Vec<QuerySnapshot>,
}

impl SnapshotData {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        binio::put_u32(&mut buf, SNAPSHOT_MAGIC);
        binio::put_u64(&mut buf, self.epoch);
        binio::put_u64(&mut buf, self.next_qid);
        binio::put_u32(&mut buf, self.streams.len() as u32);
        for (name, schema, paused) in &self.streams {
            binio::put_str(&mut buf, name);
            binio::encode_schema(&mut buf, schema);
            binio::put_u8(&mut buf, *paused as u8);
        }
        binio::put_u32(&mut buf, self.tables.len() as u32);
        for (name, schema, contents) in &self.tables {
            binio::put_str(&mut buf, name);
            binio::encode_schema(&mut buf, schema);
            binio::encode_chunk(&mut buf, contents);
        }
        binio::put_u32(&mut buf, self.queries.len() as u32);
        for q in &self.queries {
            binio::put_u64(&mut buf, q.qid);
            binio::put_str(&mut buf, &q.sql);
            binio::put_u8(&mut buf, mode_tag(q.mode));
            binio::put_u8(&mut buf, q.paused as u8);
            encode_factory_state(&mut buf, &q.state);
        }
        buf
    }

    fn decode(bytes: &[u8]) -> std::result::Result<SnapshotData, StorageError> {
        let mut r = ByteReader::new(bytes);
        if r.u32()? != SNAPSHOT_MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        let epoch = r.u64()?;
        let next_qid = r.u64()?;
        let mut streams = Vec::new();
        for _ in 0..r.u32()? {
            streams.push((r.str()?, binio::decode_schema(&mut r)?, r.u8()? != 0));
        }
        let mut tables = Vec::new();
        for _ in 0..r.u32()? {
            tables.push((r.str()?, binio::decode_schema(&mut r)?, binio::decode_chunk(&mut r)?));
        }
        let mut queries = Vec::new();
        for _ in 0..r.u32()? {
            queries.push(QuerySnapshot {
                qid: r.u64()?,
                sql: r.str()?,
                mode: mode_from_tag(r.u8()?)?,
                paused: r.u8()? != 0,
                state: decode_factory_state(&mut r)?,
            });
        }
        Ok(SnapshotData { epoch, next_qid, streams, tables, queries })
    }
}

// ---- the engine's WAL handle ------------------------------------------

/// The engine's handle to its write-ahead log. Thread-safe: the scheduler
/// writes fire records from worker threads through a shared reference
/// (the meta log serializes internally).
pub struct EngineWal {
    inner: Wal,
}

impl EngineWal {
    /// Open the WAL directory, returning the recovered snapshot (if any)
    /// and the decoded meta records appended since it. Every write goes
    /// through the I/O seam picked by `faults` — direct OS I/O when the
    /// facade is disabled, the injecting wrapper under a chaos plan.
    pub(crate) fn open(
        config: WalConfig,
        faults: &Faults,
    ) -> Result<(EngineWal, Option<SnapshotData>, Vec<MetaRecord>)> {
        let (wal, snapshot, raw) = Wal::open_with_io(config, io_for(faults)).map_err(werr)?;
        let snapshot = snapshot
            .map(|bytes| SnapshotData::decode(&bytes))
            .transpose()
            .map_err(werr)?;
        let records = raw
            .iter()
            .map(|bytes| MetaRecord::decode(bytes))
            .collect::<std::result::Result<Vec<_>, _>>()
            .map_err(werr)?;
        Ok((EngineWal { inner: wal }, snapshot, records))
    }

    pub(crate) fn append(&self, record: &MetaRecord) -> Result<()> {
        self.inner.append_meta(&record.encode()).map_err(werr)
    }

    /// Log a factory's post-fire state (called by the scheduler, possibly
    /// from worker threads).
    pub(crate) fn log_fire(&self, qid: u64, state: &FactoryState) -> Result<()> {
        self.append(&MetaRecord::FireState { qid, state: state.clone() })
    }

    pub(crate) fn write_snapshot(&self, snap: &SnapshotData) -> Result<()> {
        self.inner.write_snapshot(&snap.encode()).map_err(werr)
    }

    pub(crate) fn stream_log(&self, name: &str) -> Result<(StreamLog, Vec<StreamBatch>)> {
        self.inner.stream_log(name).map_err(werr)
    }

    pub(crate) fn drop_stream_log(&self, name: &str) {
        self.inner.drop_stream_log(name);
    }

    pub(crate) fn sync_meta(&self) -> Result<()> {
        self.inner.sync_meta().map_err(werr)
    }

    pub(crate) fn config(&self) -> &WalConfig {
        self.inner.config()
    }

    pub(crate) fn meta_bytes(&self) -> u64 {
        self.inner.meta_bytes()
    }

    /// Current WAL counters.
    pub fn stats(&self) -> WalStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{Bat, DataType, Value};

    fn state_with_everything() -> FactoryState {
        FactoryState {
            cursors: vec![
                ("a".into(), CursorState::Unwindowed { next: 7 }),
                ("b".into(), CursorState::Rows { next_bw_end: 42 }),
                ("c".into(), CursorState::Range { next_bw_end: Some(-5), low_oid: 3 }),
                ("d".into(), CursorState::Range { next_bw_end: None, low_oid: 0 }),
            ],
            incr: IncrMeta::Join {
                left: vec![(0, 0, 4), (2, 4, 8)],
                right: vec![(1, 0, 6)],
                next_epoch: 3,
            },
        }
    }

    #[test]
    fn meta_records_roundtrip() {
        let schema = Schema::of(&[("x", DataType::Int), ("s", DataType::Str)]);
        let records = vec![
            MetaRecord::CreateStream { name: "s1".into(), schema: schema.clone() },
            MetaRecord::CreateTable { name: "t1".into(), schema: schema.clone() },
            MetaRecord::Drop { name: "t1".into() },
            MetaRecord::TableInsert {
                name: "t1".into(),
                rows: vec![
                    vec![Value::Int(1), Value::Str("a".into())],
                    vec![Value::Null, Value::Null],
                ],
            },
            MetaRecord::Register {
                qid: 4,
                sql: "SELECT COUNT(*) FROM s1".into(),
                mode: ExecutionMode::Incremental,
                state: state_with_everything(),
            },
            MetaRecord::Deregister { qid: 4 },
            MetaRecord::QueryPaused { qid: 2, paused: true },
            MetaRecord::StreamPaused { name: "s1".into(), paused: false },
            MetaRecord::FireState {
                qid: 9,
                state: FactoryState {
                    cursors: vec![("s".into(), CursorState::Rows { next_bw_end: 128 })],
                    incr: IncrMeta::Agg { spans: vec![(120, 124), (124, 128)] },
                },
            },
            MetaRecord::Checkpoint { epoch: 7 },
        ];
        for rec in records {
            let decoded = MetaRecord::decode(&rec.encode()).unwrap();
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let schema = Schema::of(&[("v", DataType::Float)]);
        let snap = SnapshotData {
            epoch: 3,
            next_qid: 12,
            streams: vec![("s".into(), schema.clone(), true)],
            tables: vec![(
                "dim".into(),
                schema.clone(),
                Chunk::new(vec![Bat::from_floats(vec![1.0, 2.5])]).unwrap(),
            )],
            queries: vec![QuerySnapshot {
                qid: 3,
                sql: "SELECT AVG(v) FROM s [ROWS 4 SLIDE 2]".into(),
                mode: ExecutionMode::Incremental,
                paused: false,
                state: state_with_everything(),
            }],
        };
        let decoded = SnapshotData::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MetaRecord::decode(&[]).is_err());
        assert!(MetaRecord::decode(&[0xff, 1, 2]).is_err());
        assert!(SnapshotData::decode(&[1, 2, 3, 4, 5]).is_err());
        // Truncations of a valid record fail cleanly.
        let rec = MetaRecord::FireState { qid: 1, state: state_with_everything() };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(MetaRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
