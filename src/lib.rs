//! # datacell
//!
//! A from-scratch Rust reproduction of **MonetDB/DataCell: Online Analytics
//! in a Streaming Column-Store** (Liarou, Idreos, Manegold, Kersten,
//! VLDB 2012): continuous query processing built *inside* a columnar DBMS
//! kernel, where stream processing "becomes primarily a query scheduling
//! task".
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`obs`] — observability primitives: per-thread-sharded metrics
//!   registry (counters, gauges, log2 histograms), Prometheus text
//!   rendering/parsing, and the bounded flight recorder.
//! * [`storage`] — BATs, chunks, tables, catalog (the column-store kernel).
//! * [`wal`] — durability: CRC-framed segment logs, catalog snapshots and
//!   crash recovery (per-fire exactly-once restart).
//! * [`algebra`] — bulk columnar operators with candidate lists.
//! * [`sql`] — SQL'03-subset parser with stream/window extensions.
//! * [`plan`] — binder, optimizer, physical plans, continuous rewriting and
//!   incremental basic-window splitting.
//! * [`engine`] — the DataCell runtime: baskets, receptors, emitters,
//!   factories and the Petri-net scheduler.
//! * [`server`] — the TCP frontend: wire-protocol sessions, socket
//!   receptors (`PUSH`), subscription emitters (`SUBSCRIBE`), and the
//!   `datacell-server` / `datacell-cli` binaries.
//! * [`baseline`] — tuple-at-a-time Volcano and store-first-query-later
//!   comparator engines.
//! * [`workload`] — Linear Road-inspired, network-monitoring, web-log and
//!   sensor stream generators.
//!
//! ## Quickstart
//!
//! ```
//! use datacell::engine::DataCell;
//!
//! let mut cell = DataCell::default();
//! cell.execute("CREATE STREAM s (ts TIMESTAMP, val BIGINT)").unwrap();
//! let q = cell
//!     .register_query("SELECT COUNT(*), SUM(val) FROM s")
//!     .unwrap();
//! cell.push_rows("s", &[vec![1i64.into(), 10i64.into()],
//!                       vec![2i64.into(), 32i64.into()]]).unwrap();
//! cell.run_until_idle().unwrap();
//! let out = cell.take_results(q).unwrap();
//! assert_eq!(out[0].row(0), vec![2i64.into(), 42i64.into()]);
//! ```

pub use datacell_algebra as algebra;
pub use datacell_baseline as baseline;
pub use datacell_core as engine;
pub use datacell_obs as obs;
pub use datacell_plan as plan;
pub use datacell_server as server;
pub use datacell_sql as sql;
pub use datacell_storage as storage;
pub use datacell_wal as wal;
pub use datacell_workload as workload;

pub use datacell_core::DataCell;
pub use datacell_storage::{DataType, Row, Schema, Value};
