//! The textual counterpart of the demo's GUI (paper §4, Figures 2–4):
//! pose queries, inspect the query network and transformed plans, pause
//! and resume queries and streams, and watch the analysis pane — all the
//! interactions the VLDB demo offered, as terminal panes.
//!
//! Run with: `cargo run --example monitor`

use datacell::engine::{DataCell, ExecutionMode};
use datacell::workload::{SensorConfig, SensorStream};

fn pane(title: &str) {
    println!("\n╔══ {title} {}", "═".repeat(60usize.saturating_sub(title.len())));
}

fn main() {
    let mut cell = DataCell::default();
    cell.execute(&SensorStream::create_stream_sql("sensors")).unwrap();
    cell.execute("CREATE STREAM events (ts TIMESTAMP, sensor BIGINT, kind BIGINT)")
        .unwrap();
    cell.execute("CREATE TABLE meta (sensor BIGINT, zone BIGINT)").unwrap();
    let vals: Vec<String> = (0..100).map(|i| format!("({i}, {})", i % 4)).collect();
    cell.execute(&format!("INSERT INTO meta VALUES {}", vals.join(", "))).unwrap();

    // --- Figure 2 pane: posing queries -------------------------------
    pane("posing continuous queries (Fig. 2)");
    let q1 = cell
        .register_query_with_mode(
            "SELECT sensor, AVG(temp) FROM sensors [ROWS 512 SLIDE 128] GROUP BY sensor",
            ExecutionMode::Incremental,
        )
        .unwrap();
    let q2 = cell
        .register_query_with_mode(
            "SELECT meta.zone, MAX(sensors.temp) FROM sensors [ROWS 256 SLIDE 64] \
             JOIN meta ON sensors.sensor = meta.sensor GROUP BY meta.zone",
            ExecutionMode::Incremental,
        )
        .unwrap();
    let q3 = cell.register_query("SELECT COUNT(*) FROM events").unwrap();
    println!("registered q{q1}, q{q2}, q{q3}");

    // --- plan transformation pane -------------------------------------
    pane("plan transformation: one-time -> continuous -> incremental");
    println!("{}", cell.explain(q1).unwrap());

    // --- Figure 3 pane: the query network ------------------------------
    pane("query network (Fig. 3)");
    println!("{}", cell.network().describe());

    // --- streaming + analysis pane (Fig. 4) ----------------------------
    pane("analysis while streaming (Fig. 4)");
    let mut gen = SensorStream::new(SensorConfig { sensors: 100, ..Default::default() });
    for _ in 0..6 {
        cell.push_rows("sensors", &gen.take_rows(256)).unwrap();
        cell.run_until_idle().unwrap();
    }
    println!("{}", cell.stats().render());

    // --- pause and resume ------------------------------------------------
    pane("pause and resume (Fig. 3 controls)");
    cell.set_query_paused(q1, true).unwrap();
    cell.push_rows("sensors", &gen.take_rows(512)).unwrap();
    cell.run_until_idle().unwrap();
    println!("q{q1} paused: results pending = {}", cell.take_results(q1).unwrap().len());
    cell.set_query_paused(q1, false).unwrap();
    cell.run_until_idle().unwrap();
    println!(
        "q{q1} resumed: instantly caught up, {} result batches",
        cell.take_results(q1).unwrap().len()
    );

    cell.set_stream_paused("sensors", true).unwrap();
    let rejected = cell.push_rows("sensors", &gen.take_rows(100)).unwrap();
    println!("stream paused: {rejected} of 100 tuples accepted");
    cell.set_stream_paused("sensors", false).unwrap();

    // --- detailed status: where do tuples live? --------------------------
    pane("detailed status inspection");
    let stats = cell.stats();
    for b in &stats.baskets {
        println!(
            "basket {:<8} buffered={:<6} arrived={:<7} retired={:<7} ({} bytes)",
            b.name, b.buffered, b.arrived, b.retired, b.bytes
        );
    }
    for q in &stats.queries {
        println!(
            "query q{:<3} [{}] firings={:<5} in={:<7} out={:<6} touched(last)={}",
            q.id, q.mode, q.firings, q.tuples_in, q.tuples_out, q.last_tuples_touched
        );
    }
}
