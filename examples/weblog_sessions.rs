//! Web-log analytics scenario (paper §1: "web log analysis requires fast
//! analysis of big streaming data for decision support").
//!
//! Clickstream + a persistent URL dimension table: top pages per window,
//! per-zone traffic via a stream⋈table join, and error-rate monitoring —
//! and the log is *also* archived into the warehouse table so one-time
//! analytics can run over history ("the new data may also enter the data
//! warehouse and be stored as normal").
//!
//! Run with: `cargo run --release --example weblog_sessions`

use datacell::engine::{DataCell, ExecOutcome, ExecutionMode};
use datacell::workload::{WeblogConfig, WeblogStream};

fn main() {
    let mut cell = DataCell::default();
    cell.execute(&WeblogStream::create_stream_sql("clicks")).unwrap();
    cell.execute("CREATE TABLE url_dim (url BIGINT, section BIGINT)").unwrap();
    cell.execute(
        "CREATE TABLE clicks_archive (ts TIMESTAMP, user_id BIGINT, url BIGINT, \
         status BIGINT, bytes BIGINT)",
    )
    .unwrap();
    // Sections: urls hashed into 10 site sections.
    let values: Vec<String> = (0..500).map(|u| format!("({u}, {})", u % 10)).collect();
    cell.execute(&format!("INSERT INTO url_dim VALUES {}", values.join(", "))).unwrap();

    let top_pages = cell
        .register_query_with_mode(
            "SELECT url, COUNT(*) FROM clicks [ROWS 4096 SLIDE 1024] \
             GROUP BY url ORDER BY COUNT(*) DESC LIMIT 5",
            ExecutionMode::Incremental,
        )
        .unwrap();
    let by_section = cell
        .register_query_with_mode(
            "SELECT url_dim.section, SUM(clicks.bytes) \
             FROM clicks [ROWS 4096 SLIDE 1024] \
             JOIN url_dim ON clicks.url = url_dim.url \
             GROUP BY url_dim.section ORDER BY url_dim.section",
            ExecutionMode::Incremental,
        )
        .unwrap();
    let errors = cell
        .register_query(
            "SELECT COUNT(*) FROM clicks [ROWS 2048] WHERE status = 500",
        )
        .unwrap();

    let mut gen = WeblogStream::new(WeblogConfig::default());
    for round in 0..8 {
        let rows = gen.take_rows(2048);
        // archive + stream: the "store as normal for further analysis" path
        cell.push_rows("clicks", &rows).unwrap();
        let archive_stmt = rows
            .iter()
            .map(|r| {
                format!(
                    "({}, {}, {}, {}, {})",
                    r[0].as_int().unwrap(),
                    r[1],
                    r[2],
                    r[3],
                    r[4]
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        cell.execute(&format!("INSERT INTO clicks_archive VALUES {archive_stmt}"))
            .unwrap();
        cell.run_until_idle().unwrap();

        if round >= 2 {
            if let Some(chunk) = cell.take_results(top_pages).unwrap().last() {
                println!("round {round}: top pages");
                print!("{}", chunk.render(&["url", "hits"]));
            }
        }
        let _ = cell.take_results(by_section);
        let _ = cell.take_results(errors);
    }

    // One-time analytics over the archived history, same engine.
    if let ExecOutcome::Rows { chunk, .. } = cell
        .execute(
            "SELECT status, COUNT(*), SUM(bytes) FROM clicks_archive \
             GROUP BY status ORDER BY status",
        )
        .unwrap()
    {
        println!("\narchive summary (store-and-analyze path):");
        print!("{}", chunk.render(&["status", "requests", "bytes"]));
    }
    println!("\n{}", cell.stats().render());
}
