//! Network monitoring scenario (paper §1: "massive cloud infrastructures
//! require continuous monitoring to remain in good state and prevent fraud
//! attacks").
//!
//! A receptor thread streams flow records; three standing queries watch for
//! heavy hitters, scan bursts and aggregate bandwidth, and an emitter
//! delivers alerts as they fire.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::time::Duration;

use datacell::engine::{DataCell, ExecutionMode, Receptor};
use datacell::workload::{NetmonConfig, NetmonStream};

fn main() {
    let mut cell = DataCell::default();
    cell.execute(&NetmonStream::create_stream_sql("packets")).unwrap();

    // Q1: heavy hitters — bytes per source over a sliding window.
    let heavy = cell
        .register_query_with_mode(
            "SELECT src, SUM(len), COUNT(*) FROM packets [ROWS 8192 SLIDE 2048] \
             GROUP BY src HAVING SUM(len) > 30000 ORDER BY src LIMIT 10",
            ExecutionMode::Incremental,
        )
        .unwrap();
    // Q2: scan detection — tiny probes to unusual ports.
    let scans = cell
        .register_query_with_mode(
            "SELECT src, COUNT(*) FROM packets [ROWS 8192 SLIDE 2048] \
             WHERE len <= 60 AND port > 1024 GROUP BY src HAVING COUNT(*) > 8",
            ExecutionMode::Incremental,
        )
        .unwrap();
    // Q3: total bandwidth per slide (tumbling).
    let bw = cell
        .register_query("SELECT SUM(len), COUNT(*) FROM packets [ROWS 4096]")
        .unwrap();

    println!("{}", cell.network().describe());

    let alerts = cell.subscribe(scans).unwrap();

    // Receptor thread replaying the generator at ~400k packets/s.
    let receptor = Receptor::spawn(
        "packets",
        cell.basket("packets").unwrap(),
        NetmonStream::new(NetmonConfig::default()).take(100_000),
        Some(400_000.0),
    );

    // Event loop: schedule whenever data is pending.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        cell.run_until_idle().unwrap();
        for chunk in alerts.drain() {
            println!("SCAN ALERT ({} sources):", chunk.len());
            print!("{}", chunk.render(&["src", "probes"]));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let delivered = receptor.stop();
    cell.run_until_idle().unwrap();

    println!("\ndelivered {delivered} packets");
    for (label, q) in [("heavy hitters", heavy), ("bandwidth", bw)] {
        let chunks = cell.take_results(q).unwrap();
        let last = chunks.last();
        println!(
            "{label}: {} result batches, last batch {} rows",
            chunks.len(),
            last.map_or(0, |c| c.len())
        );
        if let Some(c) = last {
            print!("{}", c.render(&[]));
        }
    }
    println!("\n{}", cell.stats().render());
}
