//! Quickstart: create a stream, register continuous queries, push data,
//! read results.
//!
//! Run with: `cargo run --example quickstart`

use datacell::engine::{DataCell, ExecutionMode};
use datacell::Value;

fn main() {
    let mut cell = DataCell::default();

    // DDL: a stream (basket-backed) and a persistent dimension table.
    cell.execute("CREATE STREAM readings (ts TIMESTAMP, sensor BIGINT, temp DOUBLE)")
        .unwrap();
    cell.execute("CREATE TABLE sensors (sensor BIGINT, room VARCHAR)").unwrap();
    cell.execute("INSERT INTO sensors VALUES (0, 'lab'), (1, 'office'), (2, 'server-room')")
        .unwrap();

    // A continuous query: sliding-window average per room, incremental mode.
    let q = cell
        .register_query_with_mode(
            "SELECT sensors.room, AVG(readings.temp), COUNT(*) \
             FROM readings [ROWS 6 SLIDE 3] \
             JOIN sensors ON readings.sensor = sensors.sensor \
             GROUP BY sensors.room",
            ExecutionMode::Incremental,
        )
        .unwrap();

    println!("== plan ==\n{}", cell.explain(q).unwrap());

    // Stream some readings.
    for i in 0..12i64 {
        cell.push_rows(
            "readings",
            &[vec![
                Value::Timestamp(i * 1000),
                Value::Int(i % 3),
                Value::Float(20.0 + (i % 7) as f64),
            ]],
        )
        .unwrap();
        // The Petri-net scheduler fires factories whose windows completed.
        cell.run_until_idle().unwrap();
        for chunk in cell.take_results(q).unwrap() {
            println!(
                "after tuple {i:2}: \n{}",
                chunk.render(&["room", "avg_temp", "count"])
            );
        }
    }

    // A one-time query over the same engine (two query paradigms).
    if let datacell::engine::ExecOutcome::Rows { chunk, .. } =
        cell.execute("SELECT COUNT(*) FROM sensors").unwrap()
    {
        println!("sensors registered: {}", chunk.row(0)[0]);
    }

    println!("{}", cell.stats().render());
}
