//! Linear Road mini-demo: the benchmark workload the paper cites as
//! DataCell's headline result, at laptop scale.
//!
//! Run with: `cargo run --release --example linear_road_demo`

use datacell::engine::{DataCell, ExecutionMode};
use datacell::workload::{LinearRoadConfig, LinearRoadStream};

fn main() {
    let mut cell = DataCell::default();
    cell.execute(&LinearRoadStream::create_stream_sql("lr")).unwrap();

    let queries = LinearRoadStream::standard_queries("lr");
    let mut qids = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let id = cell.register_query_with_mode(q, ExecutionMode::Incremental).unwrap();
        println!("q{i}: {q}");
        qids.push(id);
    }
    println!("\n{}", cell.network().describe());

    let config = LinearRoadConfig {
        expressways: 2,
        vehicles_per_xway: 300,
        accident_rate: 0.003,
        ..Default::default()
    };
    let mut gen = LinearRoadStream::new(config.clone());
    let per_round = gen.vehicle_count();

    // 10 simulated minutes of traffic, one report round per 30 s.
    for round in 0..20 {
        let rows = gen.take_rows(per_round);
        cell.push_rows("lr", &rows).unwrap();
        cell.run_until_idle().unwrap();

        // accident detections (query 1 of the mix)
        for chunk in cell.take_results(qids[1]).unwrap() {
            if !chunk.is_empty() {
                println!("t={:>4}s ACCIDENT segments:", (round + 1) * 30);
                print!("{}", chunk.render(&["xway", "seg", "stopped_reports"]));
            }
        }
        let _ = cell.take_results(qids[0]);
        let _ = cell.take_results(qids[2]);
    }

    // Final segment statistics snapshot.
    cell.run_until_idle().unwrap();
    println!("\n{}", cell.stats().render());
    println!("explain of the segment-statistics query:\n");
    println!("{}", cell.explain(qids[0]).unwrap());
}
