//! Offline stand-in for the `polling` crate (smol-rs), Linux-only.
//!
//! Implements the subset the DataCell reactor uses: [`Poller`] with
//! `add` / `modify` / `delete` / `wait`, [`Event`] interest/readiness
//! flags and the [`Events`] buffer — directly over the `epoll` syscalls.
//!
//! Semantics match the real crate: sources are registered in **oneshot**
//! mode (`EPOLLONESHOT`), so after an event is delivered the source stays
//! registered but disarmed until the next [`Poller::modify`]. Callers
//! must re-arm after handling each event — exactly the discipline the
//! real `polling` crate requires, which keeps the reactor source-
//! compatible with it.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;

/// Linux `struct epoll_event`. Packed on x86-64 only, matching the
/// kernel ABI (see `<sys/epoll.h>`).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct epoll_event {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Interest in, or readiness of, one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source.
    pub key: usize,
    /// Interested in / ready for reading (also set on error or hangup,
    /// so a read is attempted and surfaces the failure).
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest (keeps the registration, delivers nothing).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }

    fn mask(self) -> u32 {
        let mut m = EPOLLONESHOT | EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// Buffer that [`Poller::wait`] fills with ready events.
pub struct Events {
    raw: Vec<epoll_event>,
    len: usize,
}

impl Events {
    /// A buffer sized for a typical reactor tick.
    pub fn new() -> Events {
        Events::with_capacity(1024)
    }

    /// A buffer holding at most `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            raw: vec![epoll_event { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Ready events from the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|ev| {
            let bits = ev.events;
            Event {
                key: ev.data as usize,
                // Errors and hangups surface as readable so the caller's
                // next read observes them.
                readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }

    /// Number of ready events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the last wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forget the events from the last wait.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for Events {
    fn default() -> Events {
        Events::new()
    }
}

/// A readiness queue over `epoll`.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a poller (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        let mut ev = interest.map(|i| epoll_event { events: i.mask(), data: i.key as u64 });
        let ptr = ev
            .as_mut()
            .map(|e| e as *mut epoll_event)
            .unwrap_or(std::ptr::null_mut());
        // SAFETY: `ptr` is null (DEL) or points at a live, properly laid
        // out epoll_event for the duration of the call.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Register a source with an initial interest. The registration is
    /// oneshot: after each delivered event, re-arm with
    /// [`Poller::modify`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
    }

    /// Change (or re-arm) a registered source's interest.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
    }

    /// Remove a source. Must be called before the source is dropped.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until at least one source is ready or `timeout` elapses
    /// (`None` = forever). Returns the number of events now in `events`
    /// (previous contents are replaced).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(c_int::MAX as u128) as c_int;
                // Round sub-millisecond remainders up so a 100µs timeout
                // doesn't become a zero-timeout busy loop.
                if d.subsec_nanos() % 1_000_000 != 0 {
                    ms.saturating_add(1)
                } else {
                    ms
                }
            }
        };
        let cap = events.raw.len() as c_int;
        loop {
            // SAFETY: the buffer outlives the call and `cap` matches its
            // length.
            match cvt(unsafe { epoll_wait(self.epfd, events.raw.as_mut_ptr(), cap, timeout_ms) })
            {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: owned fd, closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_and_oneshot_rearm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(7)).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing ready yet.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        a.write_all(b"hi").unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Oneshot: without a re-arm the same readiness is not redelivered.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        // Re-arm, and ask for write readiness too.
        poller.modify(&b, Event::all(7)).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.readable && ev.writable);

        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");

        poller.delete(&b).unwrap();
        a.write_all(b"x").unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn hangup_reported_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        drop(a);
        let mut events = Events::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(events.iter().next().unwrap().readable);
        poller.delete(&b).unwrap();
    }
}
