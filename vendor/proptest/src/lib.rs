//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, tuple and range strategies,
//! [`Just`], `prop::collection::{vec, btree_set}`, [`ProptestConfig`],
//! and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Cases are generated from a deterministic
//! per-test seed; there is NO shrinking — a failing case panics with the
//! standard assert message, which is enough for CI.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating one case.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of boxed strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate `BTreeSet<S::Value>` aiming for a size in `size`
    /// (duplicates may make the set smaller, as in real proptest).
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Build the deterministic RNG for one test (used by `proptest!`).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Derive a deterministic per-test seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a; any stable hash works — it only needs to differ per test.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each argument is drawn from its strategy for
/// `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::new_rng(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Assert inside a property test (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0i64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(
            s in prop_oneof![
                (0i64..5).prop_map(|k| format!("lo{k}")),
                Just(String::from("fixed")),
            ],
            pair in (0u64..3, 10u64..13),
        ) {
            prop_assert!(s == "fixed" || s.starts_with("lo"));
            prop_assert!(pair.0 < 3 && (10..13).contains(&pair.1));
        }
    }
}
