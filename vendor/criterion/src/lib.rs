//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion 0.5 API the workspace's benches
//! use — `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_with_input` / `bench_function`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples timer instead of Criterion's full statistics, so
//! `cargo bench` produces readable numbers and `cargo bench --no-run`
//! compiles the same sources the real crate would.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_one(&id.into(), sample_size, &mut f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (printing is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, collecting one duration per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call keeps cold-start effects out of the samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{label:<50} median {:>12?}   [{:?} .. {:?}]",
        median, lo, hi
    );
}

/// Define a benchmark group function, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a stand-in
            // harness can ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    #[test]
    fn group_macro_runs() {
        smoke();
    }
}
