//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`RwLock`] and [`Mutex`] with infallible, non-poisoning guards — on top
//! of `std::sync`. Poisoned locks are recovered transparently (parking_lot
//! has no poisoning), so guard acquisition never returns a `Result`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`-style infallible `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with `parking_lot`-style infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
