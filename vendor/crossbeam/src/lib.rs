//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — the only module the workspace uses —
//! implemented over `std::sync::mpsc`. Semantics match what the engine
//! relies on: unbounded channels never block on send, bounded channels
//! apply backpressure by blocking the sender when full, and receivers
//! support non-blocking and timed receives with the crossbeam error enums.

pub mod channel {
    //! MPSC channels mirroring `crossbeam-channel`'s core API.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half of a channel. Cloneable; bounded senders block when full.
    pub enum Sender<T> {
        /// Sender of an unbounded channel.
        Unbounded(mpsc::Sender<T>),
        /// Sender of a bounded (rendezvous-buffered) channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterator draining every message currently buffered, without
        /// blocking (crossbeam's `try_iter`).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(|| self.try_recv().ok())
        }
    }

    /// Create an unbounded channel: sends never block.
    #[allow(clippy::disallowed_methods)] // the stand-in wraps the std primitive
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { rx })
    }

    /// Create a bounded channel holding at most `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender::Bounded(tx), Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        #![allow(clippy::disallowed_methods)] // the stand-in tests its own constructors

        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_iter_drains_buffered() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.try_iter().count(), 0);
        }

        #[test]
        fn timeout_on_disconnect() {
            let (tx, rx) = bounded::<i32>(4);
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
