//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The workspace's workload generators only need a deterministic, seedable
//! PRNG with `gen::<T>()`, `gen_range(a..b)` and `gen_bool(p)`. This crate
//! provides those on top of xoshiro256++ seeded via SplitMix64 — the same
//! construction real `rand 0.8` uses for `StdRng` reseeding — so streams
//! are deterministic per seed and of high statistical quality for workload
//! generation (NOT for cryptography).

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; bias is negligible for workload-sized spans.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) as f32 * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`bool`, `f64`, `u64`, `i64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range` (half-open `a..b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand_core recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(0..10i64);
            assert!((0..10).contains(&i));
            let f = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&f));
            let u = rng.gen_range(1..65_536usize);
            assert!((1..65_536).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
